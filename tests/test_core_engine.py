"""Tests for the public ProSEEngine API and the paper's headline results.

These are the repository's acceptance tests: the *shapes* of the paper's
evaluation — who wins, by roughly what factor, where crossovers fall —
must hold at the evaluation operating point (512 tokens).
"""

import pytest

from repro import (
    ProSEEngine,
    best_perf,
    best_perf_plus,
    homogeneous,
    protein_bert_base,
)
from repro.arch import infinite_link, nvlink


@pytest.fixture(scope="module")
def engine():
    return ProSEEngine()


@pytest.fixture(scope="module")
def report(engine):
    return engine.simulate(batch=128, seq_len=512)


class TestInferenceReport:
    def test_config_name(self, report):
        assert report.config_name == "BestPerf"

    def test_throughput_in_expected_band(self, report):
        assert 150 < report.throughput < 350

    def test_system_power_near_thirty_watts(self, report):
        assert 25 < report.system_power_watts < 40

    def test_efficiency_consistent(self, report):
        assert report.efficiency == pytest.approx(
            report.throughput / report.system_power_watts)

    def test_summary_keys(self, report):
        summary = report.summary()
        assert set(summary) == {
            "throughput_inf_per_s", "latency_s", "system_power_w",
            "efficiency_inf_per_s_per_w"}


class TestHeadlineSpeedups:
    """Paper abstract and Section 4.3 claims."""

    def test_speedup_over_a100_at_nvlink2(self, engine):
        # "a speedup of 3.9-4.7x over the A100 ... with NVLink 2.0"
        comparison = engine.compare(engine.a100, batch=128, seq_len=512)
        assert 3.5 <= comparison.speedup <= 5.2

    def test_speedup_over_tpuv3_at_nvlink2(self, engine):
        # "a speedup of 3.1-3.8x over TPUv3 with NVLink 2.0"
        comparison = engine.compare(engine.tpu_v3, batch=128, seq_len=512)
        assert 2.8 <= comparison.speedup <= 4.3

    def test_max_speedup_over_a100(self):
        # "up to 6.9x speedup ... compared to one NVIDIA A100 GPU"
        engine = ProSEEngine(best_perf_plus())
        comparison = engine.compare(engine.a100, batch=128, seq_len=512)
        assert 6.0 <= comparison.speedup <= 8.0

    def test_max_speedup_over_tpus(self):
        # "up to 5.5x (12.7x) speedup ... compared to TPUv3 (TPUv2)"
        engine = ProSEEngine(best_perf_plus())
        v3 = engine.compare(engine.tpu_v3, batch=128, seq_len=512)
        v2 = engine.compare(engine.tpu_v2, batch=128, seq_len=512)
        assert 4.8 <= v3.speedup <= 6.5
        assert 11.0 <= v2.speedup <= 15.0

    def test_power_efficiency_orders_of_magnitude(self, engine):
        # "two to three orders of magnitude better efficiency" /
        # "48x power efficiency" vs A100, "173x (249x)" vs TPUv3 (TPUv2).
        a100 = engine.compare(engine.a100, batch=128, seq_len=512)
        v3 = engine.compare(engine.tpu_v3, batch=128, seq_len=512)
        v2 = engine.compare(engine.tpu_v2, batch=128, seq_len=512)
        assert 40 <= a100.efficiency_gain <= 90
        assert 150 <= v3.efficiency_gain <= 300
        assert 220 <= v2.efficiency_gain <= 420

    def test_efficiency_ranking(self, engine):
        # Gains vs TPUv2 > TPUv3 > A100, as in Figure 19.
        gains = [engine.compare(device, batch=64,
                                seq_len=512).efficiency_gain
                 for device in (engine.a100, engine.tpu_v3, engine.tpu_v2)]
        assert gains[0] < gains[1] < gains[2]


class TestArchitecturalClaims:
    def test_homogeneous_loses_even_at_infinite_bandwidth(self):
        # "homogeneous designs cannot deliver the desired level of
        # performance even at infinite bandwidth".
        config = protein_bert_base()
        hetero = ProSEEngine(best_perf().with_link(infinite_link()),
                             config).simulate(batch=64, seq_len=512)
        homog = ProSEEngine(homogeneous().with_link(infinite_link()),
                            config).simulate(batch=64, seq_len=512)
        assert hetero.throughput > homog.throughput

    def test_heterogeneity_gap_grows_with_length(self):
        config = protein_bert_base()
        def ratio(seq_len):
            hetero = ProSEEngine(best_perf(), config).simulate(
                batch=32, seq_len=seq_len)
            homog = ProSEEngine(homogeneous(), config).simulate(
                batch=32, seq_len=seq_len)
            return hetero.throughput / homog.throughput
        assert ratio(1024) > ratio(128)

    def test_bandwidth_helps_best_perf_plus_more(self):
        # BestPerf+ "demands faster links"; BestPerf saturates earlier.
        config = protein_bert_base()
        def gain(hardware):
            slow = ProSEEngine(hardware.with_link(nvlink(2, 0.9)),
                               config).simulate(batch=64, seq_len=512)
            fast = ProSEEngine(hardware.with_link(infinite_link()),
                               config).simulate(batch=64, seq_len=512)
            return fast.throughput / slow.throughput
        assert gain(best_perf_plus()) > gain(best_perf())

    def test_with_link_builder(self, engine):
        faster = engine.with_link(nvlink(3, 0.9))
        assert faster.hardware.link.total_bandwidth \
            == pytest.approx(540e9)

    def test_prose_stays_above_one_inference_per_watt_at_512(self, report):
        # Figure 1: ProSE remains usable (> 1 inf/s/W) at protein lengths
        # where commodity platforms fall below 1.
        assert report.efficiency > 1.0
