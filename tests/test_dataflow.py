"""Tests for dataflow patterns, graph, and builder."""

import pytest

from repro.dataflow import (
    ArrayType,
    Dataflow,
    DataflowGraph,
    DataflowKind,
    HostTask,
    TraceStructureError,
    build_dataflow_graph,
    build_graph_for,
    coverage_fraction,
)
from repro.model import protein_bert_base, protein_bert_tiny
from repro.trace import (
    OpKind,
    TraceSpec,
    elementwise_op,
    matmul_op,
    trace_model,
)


class TestPatterns:
    def test_dataflow_to_array_type_mapping(self):
        assert DataflowKind.DATAFLOW_1.array_type is ArrayType.M
        assert DataflowKind.DATAFLOW_2.array_type is ArrayType.G
        assert DataflowKind.DATAFLOW_3.array_type is ArrayType.E

    def test_array_type_capabilities(self):
        assert ArrayType.G.has_gelu and not ArrayType.G.has_exp
        assert ArrayType.E.has_exp and not ArrayType.E.has_gelu
        assert not ArrayType.M.has_gelu and not ArrayType.M.has_exp

    def test_dataflow_rejects_wrong_op_kind(self):
        with pytest.raises(ValueError):
            Dataflow(kind=DataflowKind.DATAFLOW_1,
                     ops=(elementwise_op(OpKind.GELU, (4,)),))

    def test_dataflow_rejects_empty(self):
        with pytest.raises(ValueError):
            Dataflow(kind=DataflowKind.DATAFLOW_1, ops=())

    def test_host_ops_only_on_dataflow3(self):
        with pytest.raises(ValueError):
            Dataflow(kind=DataflowKind.DATAFLOW_1,
                     ops=(matmul_op(2, 2, 2),),
                     host_ops=(elementwise_op(OpKind.SUM, (2,)),))

    def test_gemm_and_simd_partition(self):
        dataflow = Dataflow(
            kind=DataflowKind.DATAFLOW_2,
            ops=(matmul_op(4, 4, 4), elementwise_op(OpKind.ADD, (4, 4)),
                 elementwise_op(OpKind.GELU, (4, 4))))
        assert len(dataflow.gemm_ops) == 1
        assert len(dataflow.simd_ops) == 2

    def test_stream_bytes_exclude_intermediates(self):
        # MatMul (4,4,4) + GELU: only the two operands stream in (GELU has
        # no streamed operand); intermediates stay in the accumulators.
        dataflow = Dataflow(
            kind=DataflowKind.DATAFLOW_2,
            ops=(matmul_op(4, 4, 4), elementwise_op(OpKind.GELU, (4, 4))))
        assert dataflow.stream_bytes(2) == 2 * (16 + 16 + 16)


class TestGraphStructure:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_graph_for(protein_bert_base(), batch=2, seq_len=64)

    def test_paper_dataflow_mix(self, graph):
        # Figure 7: per layer 5x DF1 (4 attention + 1 output), 1x DF2,
        # 1x DF3, over 12 layers.
        kinds = [df.kind for _, df in graph.dataflows]
        assert kinds.count(DataflowKind.DATAFLOW_1) == 5 * 12
        assert kinds.count(DataflowKind.DATAFLOW_2) == 12
        assert kinds.count(DataflowKind.DATAFLOW_3) == 12

    def test_host_tasks_are_norms_and_embeddings(self, graph):
        names = [task.name for _, task in graph.host_tasks]
        assert names[0] == "embeddings"
        assert sum("layernorm" in n for n in names) == 24

    def test_acyclic(self, graph):
        assert graph.validate_acyclic()

    def test_qkv_parallel_dependencies(self, graph):
        # The three projections of layer 0 all depend on the embeddings.
        dataflows = graph.dataflows
        q, k, v = (df for _, df in dataflows[:3])
        assert q.deps == k.deps == v.deps

    def test_dataflow3_depends_on_projections(self, graph):
        scores = next(df for _, df in graph.dataflows
                      if df.kind is DataflowKind.DATAFLOW_3)
        assert len(scores.deps) == 3

    def test_softmax_split_host_ops(self, graph):
        scores = next(df for _, df in graph.dataflows
                      if df.kind is DataflowKind.DATAFLOW_3)
        kinds = [op.kind for op in scores.host_ops]
        assert kinds == [OpKind.SUM, OpKind.DIV]
        accel_kinds = [op.kind for op in scores.ops]
        assert accel_kinds == [OpKind.BMM, OpKind.DIV, OpKind.EXP,
                               OpKind.BMM]

    def test_mask_included_when_traced(self):
        graph = build_graph_for(protein_bert_tiny(), batch=1, seq_len=16,
                                with_mask=True)
        scores = next(df for _, df in graph.dataflows
                      if df.kind is DataflowKind.DATAFLOW_3)
        kinds = [op.kind for op in scores.ops]
        assert kinds == [OpKind.BMM, OpKind.DIV, OpKind.ADD, OpKind.EXP,
                         OpKind.BMM]

    def test_coverage_above_ninety_percent(self, graph):
        # Paper: the three dataflows cover ~90% of inference time; on a
        # FLOP basis coverage is higher still.
        assert coverage_fraction(graph) > 0.95

    def test_critical_path_unit_cost(self, graph):
        # Unit cost per node: the critical path is the serial chain
        # through one layer (7 nodes) times 12 layers plus embeddings.
        length = graph.critical_path_length(lambda node: 1.0)
        assert length == 1 + 12 * 7

    def test_successors_inverse_of_deps(self, graph):
        for index, node in enumerate(graph.nodes):
            for dep in node.deps:
                assert index in graph.successors(dep)


class TestGraphValidation:
    def test_forward_dependency_rejected(self):
        task = HostTask(ops=(elementwise_op(OpKind.LAYERNORM, (2,)),),
                        deps=(1,))
        with pytest.raises(ValueError):
            DataflowGraph([task])

    def test_count_by_array_type(self):
        graph = build_graph_for(protein_bert_tiny(), batch=1, seq_len=8)
        counts = graph.count_by_array_type()
        assert counts[ArrayType.M] == 10
        assert counts[ArrayType.G] == 2
        assert counts[ArrayType.E] == 2


class TestBuilderErrors:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceStructureError):
            build_dataflow_graph([])

    def test_truncated_trace_rejected(self):
        ops = trace_model(TraceSpec(protein_bert_tiny(), batch=1,
                                    seq_len=8))
        with pytest.raises(TraceStructureError):
            build_dataflow_graph(ops[:10])

    def test_shuffled_trace_rejected(self):
        ops = list(trace_model(TraceSpec(protein_bert_tiny(), batch=1,
                                         seq_len=8)))
        softmax = next(i for i, op in enumerate(ops)
                       if op.kind is OpKind.SOFTMAX)
        gemm = next(i for i, op in enumerate(ops)
                    if op.kind is OpKind.MATMUL)
        ops[softmax], ops[gemm] = ops[gemm], ops[softmax]
        with pytest.raises(TraceStructureError):
            build_dataflow_graph(ops)

    def test_embeddings_only_rejected(self):
        ops = trace_model(TraceSpec(protein_bert_tiny(), batch=1,
                                    seq_len=8))[:4]
        with pytest.raises(TraceStructureError):
            build_dataflow_graph(ops)
