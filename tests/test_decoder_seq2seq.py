"""Tests for the decoder extension and its dataflow mapping."""

import numpy as np
import pytest

from repro.dataflow import DataflowKind, build_seq2seq_graph
from repro.model import ProteinSeq2Seq, causal_mask, protein_bert_base, protein_bert_tiny
from repro.trace import TraceRecorder

CONFIG = protein_bert_tiny()


@pytest.fixture(scope="module")
def model():
    return ProteinSeq2Seq(CONFIG, seed=0)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    source = rng.integers(5, 25, size=(2, 12))
    target = rng.integers(5, 25, size=(2, 8))
    return source, target


class TestCausalMask:
    def test_lower_triangle_open(self):
        bias = causal_mask(4)
        assert (bias[np.tril_indices(4)] == 0).all()

    def test_upper_triangle_blocked(self):
        bias = causal_mask(4)
        assert (bias[np.triu_indices(4, k=1)] <= -1e8).all()


class TestSeq2SeqModel:
    def test_output_shape(self, model, inputs):
        source, target = inputs
        out = model.forward(source, target)
        assert out.shape == (2, 8, CONFIG.hidden_size)

    def test_causality(self, model, inputs):
        # Changing a later target token must not change earlier positions.
        source, target = inputs
        out = model.forward(source, target)
        mutated = target.copy()
        mutated[0, -1] = (mutated[0, -1] + 7) % 20 + 5
        out2 = model.forward(source, mutated)
        assert np.allclose(out[0, :-1], out2[0, :-1], atol=1e-5)
        assert not np.allclose(out[0, -1], out2[0, -1], atol=1e-5)

    def test_source_affects_all_positions(self, model, inputs):
        source, target = inputs
        out = model.forward(source, target)
        mutated = source.copy()
        mutated[0, 0] = (mutated[0, 0] + 7) % 20 + 5
        out2 = model.forward(mutated, target)
        assert not np.allclose(out[0], out2[0], atol=1e-5)

    def test_trace_records_cross_attention(self, model, inputs):
        source, target = inputs
        recorder = TraceRecorder()
        model.forward(source, target, recorder)
        names = [op.name for op in recorder]
        assert any("cross.scores" in name for name in names)
        assert any("self.scores" in name for name in names)

    def test_deterministic(self, model, inputs):
        source, target = inputs
        assert np.array_equal(model.forward(source, target),
                              model.forward(source, target))


class TestSeq2SeqGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_seq2seq_graph(protein_bert_base(), batch=2,
                                   src_len=128, tgt_len=64)

    def test_acyclic(self, graph):
        assert graph.validate_acyclic()

    def test_dataflow_mix_per_decoder_layer(self, graph):
        # Encoder contributes 5/1/1 per layer; each decoder layer adds
        # 9x DF1 (2 attention blocks x 4 projections + FFN output),
        # 1x DF2, 2x DF3.
        kinds = [df.kind for _, df in graph.dataflows]
        layers = protein_bert_base().num_layers
        assert kinds.count(DataflowKind.DATAFLOW_1) == 5 * layers + 9 * layers
        assert kinds.count(DataflowKind.DATAFLOW_2) == 2 * layers
        assert kinds.count(DataflowKind.DATAFLOW_3) == 3 * layers

    def test_causal_mask_in_self_attention_df3(self, graph):
        from repro.trace import OpKind
        self_df3 = next(df for _, df in graph.dataflows
                        if df.name.endswith("layer.0.self"))
        kinds = [op.kind for op in self_df3.ops]
        assert OpKind.ADD in kinds     # the causal-mask addition

    def test_cross_attention_reads_encoder(self, graph):
        # Cross K/V projections depend on the encoder's final node.
        names = {df.name: (index, df)
                 for index, df in graph.dataflows}
        _, cross_k = names["decoder.layer.0.cross.key"]
        encoder_final = max(index for index, node
                            in enumerate(graph.nodes)
                            if getattr(node, "name", "")
                            == "layer.11.output.layernorm")
        assert cross_k.deps == (encoder_final,)

    def test_decoder_depth_override(self):
        graph = build_seq2seq_graph(protein_bert_base(), batch=1,
                                    src_len=64, tgt_len=32,
                                    decoder_layers=2)
        decoder_df2 = [df for _, df in graph.dataflows
                       if df.kind is DataflowKind.DATAFLOW_2
                       and df.name.startswith("decoder")]
        assert len(decoder_df2) == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_seq2seq_graph(protein_bert_base(), batch=0,
                                src_len=64, tgt_len=32)


class TestSeq2SeqScheduling:
    def test_schedules_on_prose(self):
        from repro.arch import best_perf
        from repro.sched import Orchestrator
        config = protein_bert_base()
        result = Orchestrator(best_perf()).run(
            config, batch=8, seq_len=128,
            graph_builder=lambda sub: build_seq2seq_graph(
                config, batch=sub, src_len=128, tgt_len=64))
        assert result.throughput > 0

    def test_decoder_costs_throughput(self):
        from repro.arch import best_perf
        from repro.sched import Orchestrator
        config = protein_bert_base()
        orchestrator = Orchestrator(best_perf())
        encoder_only = orchestrator.run(config, batch=8, seq_len=128)
        seq2seq = orchestrator.run(
            config, batch=8, seq_len=128,
            graph_builder=lambda sub: build_seq2seq_graph(
                config, batch=sub, src_len=128, tgt_len=64))
        assert seq2seq.throughput < encoder_only.throughput
