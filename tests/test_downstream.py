"""Tests for the downstream task substrate (Figure 2b)."""

import pytest

from repro.downstream import (
    TASK_REGISTRY,
    default_task_extractor,
    evaluate_task,
    fluorescence_label,
    format_results,
    make_task_dataset,
    stability_label,
)
from repro.downstream.tasks import make_fluorescence_label
from repro.model import ProteinBert, protein_bert_tiny


class TestLabels:
    def test_fluorescence_penalizes_core_charge(self):
        wild_type = "A" * 50 + "IIIIIIIIIII" + "A" * 50
        label = make_fluorescence_label(wild_type)
        charged = wild_type[:55] + "K" + wild_type[56:]
        assert label(charged) < label(wild_type)

    def test_fluorescence_fixed_core_site(self):
        wild_type = "A" * 50 + "IIIIIIIIIII" + "A" * 50
        label = make_fluorescence_label(wild_type)
        # A mutation far from the core leaves the label unchanged.
        distant = "R" + wild_type[1:]
        assert label(distant) == pytest.approx(label(wild_type))

    def test_stability_prefers_hydrophobic(self):
        hydrophobic = "ILVILVILVILVILV"
        charged = "KDEKDEKDEKDEKDE"
        assert stability_label(hydrophobic) > stability_label(charged)

    def test_single_sequence_helper(self):
        assert isinstance(fluorescence_label("A" * 40 + "I" * 12), float)


class TestTaskDatasets:
    def test_registry_tasks(self):
        assert set(TASK_REGISTRY) == {"fluorescence", "stability"}

    @pytest.mark.parametrize("name", sorted(TASK_REGISTRY))
    def test_dataset_shapes(self, name):
        dataset = make_task_dataset(name, num_train=20, num_test=10)
        assert len(dataset.train) == 20
        assert len(dataset.test) == 10
        _, length, _ = TASK_REGISTRY[name]
        assert all(len(example.sequence) == length
                   for example in dataset.train)

    def test_deterministic(self):
        a = make_task_dataset("stability", seed=3)
        b = make_task_dataset("stability", seed=3)
        assert a.train == b.train

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            make_task_dataset("folding")

    def test_labels_vary(self):
        dataset = make_task_dataset("fluorescence", num_train=30,
                                    num_test=5)
        assert dataset.train_labels.std() > 0

    def test_label_arrays(self):
        dataset = make_task_dataset("stability", num_train=6, num_test=3)
        assert dataset.train_labels.shape == (6,)
        assert dataset.test_labels.shape == (3,)
        assert len(dataset.train_sequences) == 6


class TestEvaluation:
    def test_pipeline_runs_with_tiny_extractor(self):
        dataset = make_task_dataset("stability", num_train=24,
                                    num_test=12)
        model = ProteinBert(protein_bert_tiny(max_position=128), seed=0)
        result = evaluate_task(dataset, model=model)
        assert result.task == "stability"
        assert -1.0 <= result.rank_correlation <= 1.0

    def test_stability_transfers_well(self):
        # The full default extractor achieves strong transfer on the
        # compositional stability task.
        dataset = make_task_dataset("stability")
        result = evaluate_task(dataset, model=default_task_extractor())
        assert result.rank_correlation > 0.7

    def test_format_results(self):
        from repro.downstream import TaskResult
        results = {"stability": TaskResult(
            task="stability", rank_correlation=0.9,
            pearson_correlation=0.92, num_train=96, num_test=48)}
        text = format_results(results)
        assert "stability" in text and "0.9" in text
