"""Tests for the design-space exploration (Table 3, Figures 16-17)."""

import pytest

from repro.dse import (
    DEFAULT_PE_BUDGET,
    DesignSpaceExplorer,
    Mix,
    argmin,
    enumerate_configs,
    enumerate_mixes,
    mix_to_config,
    pareto_front,
    space_size,
)
from repro.dse.space import DEFAULT_PARTITIONS
from repro.model import protein_bert_tiny

FAST_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                                intermediate_size=512, max_position=256)


class TestSpace:
    def test_all_mixes_hit_budget_exactly(self):
        for mix in enumerate_mixes():
            assert mix.total_pes == DEFAULT_PE_BUDGET

    def test_counts_within_table3_limits(self):
        for mix in enumerate_mixes():
            assert 1 <= mix.m_count <= 3
            cap_g = 15 if mix.g_size == 32 else 31
            cap_e = 15 if mix.e_size == 32 else 31
            assert 1 <= mix.g_count <= cap_g
            assert 1 <= mix.e_count <= cap_e

    def test_space_size_near_paper(self):
        # Paper explored 238 configurations; our enumeration yields 232.
        assert 200 <= space_size() <= 280

    def test_paper_best_perf_mix_in_space(self):
        assert Mix(2, 16, 10, 16, 22) in enumerate_mixes()

    def test_paper_most_efficient_mix_in_space(self):
        assert Mix(2, 32, 3, 16, 20) in enumerate_mixes()

    def test_other_budgets_enumerate(self):
        for budget in (8192, 20480, 24576):
            mixes = enumerate_mixes(budget)
            assert mixes
            assert all(m.total_pes == budget for m in mixes)

    def test_mix_to_config_materializes(self):
        mix = Mix(2, 16, 10, 16, 22)
        config = mix_to_config(mix, DEFAULT_PARTITIONS[0])
        assert config.total_pes == DEFAULT_PE_BUDGET

    def test_enumerate_configs_count(self):
        configs = list(enumerate_configs())
        assert len(configs) == space_size()


class TestPareto:
    def test_front_contains_extremes(self):
        points = [(1.0, 5.0), (2.0, 2.0), (5.0, 1.0), (4.0, 4.0)]
        front = pareto_front(points, lambda p: p)
        assert (1.0, 5.0) in front
        assert (5.0, 1.0) in front
        assert (4.0, 4.0) not in front

    def test_dominated_point_removed(self):
        points = [(1.0, 1.0), (2.0, 2.0)]
        assert pareto_front(points, lambda p: p) == [(1.0, 1.0)]

    def test_argmin(self):
        assert argmin([3, 1, 2], key=lambda x: x) == 1
        with pytest.raises(ValueError):
            argmin([], key=lambda x: x)


class TestExplorer:
    @pytest.fixture(scope="class")
    def sweep(self):
        explorer = DesignSpaceExplorer(model_config=FAST_CONFIG, batch=8,
                                       seq_len=128)
        return explorer.sweep(limit=16)

    def test_points_evaluated(self, sweep):
        assert len(sweep.points) == 16

    def test_best_perf_is_fastest(self, sweep):
        fastest = min(p.normalized_runtime for p in sweep.points)
        assert sweep.best_perf.normalized_runtime == fastest

    def test_pareto_picks_not_dominated(self, sweep):
        for pick in (sweep.most_power_efficient,
                     sweep.most_area_efficient):
            for other in sweep.points:
                dominates = (other.normalized_runtime
                             <= pick.normalized_runtime
                             and other.power_watts <= pick.power_watts
                             and (other.normalized_runtime
                                  < pick.normalized_runtime
                                  or other.power_watts < pick.power_watts))
                if pick is sweep.most_power_efficient:
                    assert not dominates or other is pick

    def test_points_have_physical_attributes(self, sweep):
        for point in sweep.points:
            assert point.power_watts > 0
            assert point.area_mm2 > 0
            assert point.normalized_runtime > 0

    def test_perf_per_watt_definition(self, sweep):
        point = sweep.points[0]
        assert point.perf_per_watt == pytest.approx(
            1.0 / (point.normalized_runtime * point.power_watts))

    def test_empty_space_rejected(self):
        explorer = DesignSpaceExplorer(model_config=FAST_CONFIG, batch=4,
                                       seq_len=64)
        with pytest.raises(ValueError):
            explorer.sweep(limit=0)
