"""Edge-case and cross-cutting coverage tests."""

import pytest

from repro.arch import best_perf
from repro.baselines import a100
from repro.cli import main
from repro.dataflow import ArrayType, build_graph_for
from repro.model import protein_bert_tiny
from repro.trace import OpKind, TraceSpec, elementwise_op, trace_model


class TestHardwareConfigQueries:
    def test_groups_of_returns_matching_type(self):
        config = best_perf()
        m_groups = config.groups_of(ArrayType.M)
        assert all(g.array_type is ArrayType.M for g in m_groups)
        assert config.count_of(ArrayType.E) == 22

    def test_immutability(self):
        config = best_perf()
        with pytest.raises(Exception):
            config.threads = 4  # type: ignore[misc]


class TestGraphWeightedCriticalPath:
    def test_weighted_critical_path(self):
        graph = build_graph_for(protein_bert_tiny(), batch=1, seq_len=8)
        unit = graph.critical_path_length(lambda node: 1.0)
        doubled = graph.critical_path_length(lambda node: 2.0)
        assert doubled == pytest.approx(2 * unit)

    def test_zero_cost_path(self):
        graph = build_graph_for(protein_bert_tiny(), batch=1, seq_len=8)
        assert graph.critical_path_length(lambda node: 0.0) == 0.0


class TestRooflineBranches:
    def test_softmax_uses_input_elements(self):
        device = a100()
        softmax = elementwise_op(OpKind.SOFTMAX, (4, 128, 128))
        summed = elementwise_op(OpKind.SUM, (4, 128, 128))
        # Softmax makes more memory passes than a single reduction.
        assert device.op_seconds(softmax) > device.op_seconds(summed)

    def test_transpose_cheap_but_not_free(self):
        device = a100()
        transpose = elementwise_op(OpKind.TRANSPOSE, (64, 64))
        assert device.op_seconds(transpose) \
            >= device.spec.kernel_overhead

    def test_memory_bound_gemm(self):
        # A skinny GEMM (k = 1) is memory-bound on the A100 model.
        device = a100()
        from repro.trace import matmul_op
        skinny = matmul_op(4096, 1, 4096)
        bytes_time = (skinny.bytes_moved(2)
                      / device.spec.memory_bandwidth)
        assert device.op_seconds(skinny) >= bytes_time

    def test_batch_throughput_positive_all_lengths(self):
        device = a100()
        config = protein_bert_tiny(max_position=512)
        for seq_len in (16, 64, 256):
            assert device.throughput(config, 4, seq_len) > 0


class TestTraceEdgeCases:
    def test_single_layer_model(self):
        config = protein_bert_tiny(num_layers=1)
        trace_model(TraceSpec(config, batch=1, seq_len=4))
        graph = build_graph_for(config, batch=1, seq_len=4)
        assert len(graph.dataflows) == 7     # 5 DF1 + 1 DF2 + 1 DF3

    def test_seq_len_one(self):
        config = protein_bert_tiny()
        graph = build_graph_for(config, batch=1, seq_len=1)
        assert graph.validate_acyclic()

    def test_large_batch_symbolic_trace_fast(self):
        from repro.model import protein_bert_base
        ops = trace_model(TraceSpec(protein_bert_base(), batch=1024,
                                    seq_len=2048))
        assert len(ops) > 0


class TestCliExperiments:
    def test_named_experiment_runs(self, capsys):
        assert main(["experiments", "Table 3"]) == 0
        out = capsys.readouterr().out
        assert "DSE configuration space" in out

    def test_compare_single_baseline(self, capsys):
        assert main(["compare", "--baseline", "tpuv3", "--batch", "16",
                     "--seq-len", "128"]) == 0
        out = capsys.readouterr().out
        assert "TPUv3" in out and "A100" not in out
