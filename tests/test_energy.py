"""Tests for the energy-attribution model."""

import pytest

from repro.arch import best_perf, homogeneous
from repro.model import protein_bert_tiny
from repro.physical import energy_report, format_energy, system_power_watts
from repro.sched import Orchestrator

CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                           intermediate_size=512, max_position=256)


@pytest.fixture(scope="module")
def schedule():
    return Orchestrator(best_perf()).run(CONFIG, batch=16, seq_len=128)


@pytest.fixture(scope="module")
def report(schedule):
    return energy_report(schedule, best_perf())


class TestEnergyReport:
    def test_components_sum_to_total(self, report):
        assert report.total_joules == pytest.approx(
            report.active_joules + report.idle_joules
            + report.host_joules)

    def test_shares_sum_to_one(self, report):
        total = report.share("idle") + report.share("host") + sum(
            report.share(kind)
            for kind, _ in report.active_joules_by_kind)
        assert total == pytest.approx(1.0)

    def test_all_kinds_attributed(self, report):
        kinds = {kind for kind, _ in report.active_joules_by_kind}
        assert kinds == {"dataflow1", "dataflow2", "dataflow3"}

    def test_total_bounded_by_full_power_envelope(self, schedule, report):
        # Energy can never exceed makespan x full system power (idle
        # discount only reduces it).
        envelope = (schedule.makespan_seconds
                    * system_power_watts(best_perf()))
        assert report.total_joules <= envelope * 1.001

    def test_host_energy_scales_with_makespan(self, schedule, report):
        from repro.sched import HOST_POWER_WATTS
        assert report.host_joules == pytest.approx(
            schedule.makespan_seconds * HOST_POWER_WATTS)

    def test_per_inference_energy_positive(self, report):
        assert report.joules_per_inference > 0

    def test_unknown_component_rejected(self, report):
        with pytest.raises(KeyError):
            report.share("dataflow9")

    def test_format_renders(self, report):
        text = format_energy(report)
        assert "mJ/inference" in text
        assert "idle" in text

    def test_pooled_config_supported(self):
        schedule = Orchestrator(homogeneous()).run(CONFIG, batch=8,
                                                   seq_len=64)
        report = energy_report(schedule, homogeneous())
        assert report.total_joules > 0
