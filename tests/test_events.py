"""Tests for the gap-aware resource timelines and pools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import Pool, Timeline
from repro.sched.events import common_start


class TestTimeline:
    def test_sequential_reservations(self):
        timeline = Timeline("t")
        assert timeline.reserve(0.0, 2.0) == (0.0, 2.0)
        assert timeline.reserve(0.0, 3.0) == (2.0, 5.0)

    def test_backfills_gaps(self):
        timeline = Timeline("t")
        timeline.reserve(10.0, 5.0)          # busy [10, 15]
        start, end = timeline.reserve(0.0, 4.0)
        assert (start, end) == (0.0, 4.0)    # fits before the future block

    def test_gap_too_small_skipped(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)           # [0, 2]
        timeline.reserve(3.0, 2.0)           # [3, 5]
        start, _ = timeline.reserve(0.0, 2.0)
        assert start == 5.0                  # 1-wide gap at [2,3] skipped

    def test_exact_fit_gap_used(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)
        timeline.reserve(4.0, 2.0)
        start, _ = timeline.reserve(0.0, 2.0)
        assert start == 2.0

    def test_earliest_respected_inside_gap(self):
        timeline = Timeline("t")
        timeline.reserve(10.0, 2.0)
        start, _ = timeline.reserve(3.0, 2.0)
        assert start == 3.0

    def test_busy_seconds_accumulate(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)
        timeline.reserve(5.0, 3.0)
        assert timeline.busy_seconds == pytest.approx(5.0)
        assert timeline.utilization(10.0) == pytest.approx(0.5)

    def test_zero_duration_allowed(self):
        timeline = Timeline("t")
        assert timeline.reserve(1.0, 0.0) == (1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline("t").reserve(0.0, -1.0)

    def test_reserve_at_requires_free_slot(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 5.0)
        with pytest.raises(ValueError):
            timeline.reserve_at(2.0, 1.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=10)), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_reservations_never_overlap(self, requests):
        timeline = Timeline("t")
        intervals = []
        for earliest, duration in requests:
            granted = timeline.reserve(earliest, duration)
            if granted[1] > granted[0]:   # zero-width grants (including
                intervals.append(granted)  # underflowed ones) occupy nothing
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0.1, max_value=10)), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_start_never_before_earliest(self, requests):
        timeline = Timeline("t")
        for earliest, duration in requests:
            start, _ = timeline.reserve(earliest, duration)
            assert start >= earliest - 1e-12


class TestCommonStart:
    def test_both_free(self):
        a, b = Timeline("a"), Timeline("b")
        assert common_start(1.0, [(a, 2.0), (b, 3.0)]) == 1.0

    def test_pushed_by_busier_resource(self):
        a, b = Timeline("a"), Timeline("b")
        a.reserve(0.0, 5.0)
        assert common_start(0.0, [(a, 1.0), (b, 1.0)]) == 5.0

    def test_finds_shared_gap(self):
        a, b = Timeline("a"), Timeline("b")
        a.reserve(0.0, 2.0)       # a busy [0,2]
        b.reserve(3.0, 2.0)       # b busy [3,5]
        # A 1-second joint reservation fits at [2,3].
        assert common_start(0.0, [(a, 1.0), (b, 1.0)]) == 2.0


class TestPool:
    def test_parallel_servers(self):
        pool = Pool.with_servers("host", 2)
        s1, _ = pool.reserve(0.0, 5.0)
        s2, _ = pool.reserve(0.0, 5.0)
        s3, _ = pool.reserve(0.0, 5.0)
        assert s1 == 0.0 and s2 == 0.0
        assert s3 == 5.0

    def test_utilization_across_servers(self):
        pool = Pool.with_servers("host", 2)
        pool.reserve(0.0, 4.0)
        assert pool.utilization(4.0) == pytest.approx(0.5)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            Pool.with_servers("host", 0)
