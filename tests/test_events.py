"""Tests for the gap-aware resource timelines and pools."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import Pool, Timeline
from repro.sched.events import common_start, reserve_pair


def legacy_next_fit(timeline: Timeline, earliest: float,
                    duration: float) -> float:
    """The pre-optimization ``next_fit``: unconditional bisect + gap scan.

    Kept verbatim as the parity reference for the gapless fast path."""
    if duration < 0:
        raise ValueError("duration must be non-negative")
    index = bisect.bisect_right(timeline._ends, earliest)
    candidate = earliest
    starts, ends = timeline._starts, timeline._ends
    while index < len(starts):
        if starts[index] - candidate >= duration:
            return candidate
        candidate = max(candidate, ends[index])
        index += 1
    return candidate


def clone_timeline(timeline: Timeline) -> Timeline:
    clone = Timeline(timeline.name)
    clone._starts = list(timeline._starts)
    clone._ends = list(timeline._ends)
    clone.busy_seconds = timeline.busy_seconds
    clone.reservations = timeline.reservations
    clone._gapless = timeline._gapless
    clone._last_end = timeline._last_end
    return clone


class TestTimeline:
    def test_sequential_reservations(self):
        timeline = Timeline("t")
        assert timeline.reserve(0.0, 2.0) == (0.0, 2.0)
        assert timeline.reserve(0.0, 3.0) == (2.0, 5.0)

    def test_backfills_gaps(self):
        timeline = Timeline("t")
        timeline.reserve(10.0, 5.0)          # busy [10, 15]
        start, end = timeline.reserve(0.0, 4.0)
        assert (start, end) == (0.0, 4.0)    # fits before the future block

    def test_gap_too_small_skipped(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)           # [0, 2]
        timeline.reserve(3.0, 2.0)           # [3, 5]
        start, _ = timeline.reserve(0.0, 2.0)
        assert start == 5.0                  # 1-wide gap at [2,3] skipped

    def test_exact_fit_gap_used(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)
        timeline.reserve(4.0, 2.0)
        start, _ = timeline.reserve(0.0, 2.0)
        assert start == 2.0

    def test_earliest_respected_inside_gap(self):
        timeline = Timeline("t")
        timeline.reserve(10.0, 2.0)
        start, _ = timeline.reserve(3.0, 2.0)
        assert start == 3.0

    def test_busy_seconds_accumulate(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 2.0)
        timeline.reserve(5.0, 3.0)
        assert timeline.busy_seconds == pytest.approx(5.0)
        assert timeline.utilization(10.0) == pytest.approx(0.5)

    def test_zero_duration_allowed(self):
        timeline = Timeline("t")
        assert timeline.reserve(1.0, 0.0) == (1.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline("t").reserve(0.0, -1.0)

    def test_reserve_at_requires_free_slot(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 5.0)
        with pytest.raises(ValueError):
            timeline.reserve_at(2.0, 1.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=10)), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_reservations_never_overlap(self, requests):
        timeline = Timeline("t")
        intervals = []
        for earliest, duration in requests:
            granted = timeline.reserve(earliest, duration)
            if granted[1] > granted[0]:   # zero-width grants (including
                intervals.append(granted)  # underflowed ones) occupy nothing
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0.1, max_value=10)), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_start_never_before_earliest(self, requests):
        timeline = Timeline("t")
        for earliest, duration in requests:
            start, _ = timeline.reserve(earliest, duration)
            assert start >= earliest - 1e-12


class TestNextFitParity:
    """The O(1) fast paths must place requests exactly where the legacy
    scan would — bit-identical floats, not approximately equal."""

    request_lists = st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=10)), min_size=1, max_size=60)

    @given(request_lists)
    @settings(max_examples=100, deadline=None)
    def test_next_fit_matches_legacy_scan(self, requests):
        timeline = Timeline("t")
        for earliest, duration in requests:
            assert timeline.next_fit(earliest, duration) == \
                legacy_next_fit(timeline, earliest, duration)
            timeline.reserve(earliest, duration)

    @given(request_lists)
    @settings(max_examples=100, deadline=None)
    def test_gapless_flag_never_lies(self, requests):
        """When the flag says gapless, the busy set really is one block."""
        timeline = Timeline("t")
        for earliest, duration in requests:
            timeline.reserve(earliest, duration)
            if timeline._gapless:
                for end, nxt in zip(timeline._ends, timeline._starts[1:]):
                    assert end >= nxt
            # either way the interval lists stay sorted and disjoint
            for end, nxt in zip(timeline._ends, timeline._starts[1:]):
                assert end <= nxt + 1e-9

    @given(request_lists,
           st.floats(min_value=0, max_value=120),
           st.floats(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_forced_slow_path_agrees_with_fast_path(self, requests,
                                                    earliest, duration):
        """Clearing the flag on a genuinely gapless timeline must not
        change any answer: the flag is an optimization, not a semantic."""
        timeline = Timeline("t")
        for req_earliest, req_duration in requests:
            timeline.reserve(req_earliest, req_duration)
        forced = clone_timeline(timeline)
        forced._gapless = False
        assert timeline.next_fit(earliest, duration) == \
            forced.next_fit(earliest, duration)

    def test_sequential_appends_stay_gapless(self):
        timeline = Timeline("t")
        for i in range(10):
            timeline.reserve(0.0, 1.0)
        assert timeline._gapless

    def test_future_reservation_clears_flag(self):
        timeline = Timeline("t")
        timeline.reserve(0.0, 1.0)
        timeline.reserve(5.0, 1.0)
        assert not timeline._gapless
        # and the gap is then found by the general scan
        assert timeline.next_fit(0.0, 2.0) == 1.0


class TestReservePairParity:
    joint_requests = st.lists(st.tuples(
        st.floats(min_value=0, max_value=50),
        st.floats(min_value=0, max_value=5),
        st.floats(min_value=0, max_value=5)), min_size=1, max_size=30)

    @given(joint_requests)
    @settings(max_examples=100, deadline=None)
    def test_matches_common_start_plus_reserve_at(self, requests):
        """reserve_pair on (channel, array) pairs must produce the same
        starts and the same timeline state as the legacy three-fit
        sequence, reservation by reservation."""
        channel, array = Timeline("chan"), Timeline("arr")
        legacy_channel, legacy_array = Timeline("chan"), Timeline("arr")
        for earliest, hold, duration in requests:
            start = reserve_pair(earliest, [(channel, hold),
                                            (array, duration)])
            expected = common_start(earliest, [(legacy_channel, hold),
                                               (legacy_array, duration)])
            legacy_channel.reserve_at(expected, hold)
            legacy_array.reserve_at(expected, duration)
            assert start == expected
            assert channel._starts == legacy_channel._starts
            assert channel._ends == legacy_channel._ends
            assert array._starts == legacy_array._starts
            assert array._ends == legacy_array._ends
        assert channel.busy_seconds == legacy_channel.busy_seconds
        assert array.busy_seconds == legacy_array.busy_seconds
        assert array.reservations == legacy_array.reservations


class TestCommonStart:
    def test_both_free(self):
        a, b = Timeline("a"), Timeline("b")
        assert common_start(1.0, [(a, 2.0), (b, 3.0)]) == 1.0

    def test_pushed_by_busier_resource(self):
        a, b = Timeline("a"), Timeline("b")
        a.reserve(0.0, 5.0)
        assert common_start(0.0, [(a, 1.0), (b, 1.0)]) == 5.0

    def test_finds_shared_gap(self):
        a, b = Timeline("a"), Timeline("b")
        a.reserve(0.0, 2.0)       # a busy [0,2]
        b.reserve(3.0, 2.0)       # b busy [3,5]
        # A 1-second joint reservation fits at [2,3].
        assert common_start(0.0, [(a, 1.0), (b, 1.0)]) == 2.0


class TestPool:
    def test_parallel_servers(self):
        pool = Pool.with_servers("host", 2)
        s1, _ = pool.reserve(0.0, 5.0)
        s2, _ = pool.reserve(0.0, 5.0)
        s3, _ = pool.reserve(0.0, 5.0)
        assert s1 == 0.0 and s2 == 0.0
        assert s3 == 5.0

    def test_utilization_across_servers(self):
        pool = Pool.with_servers("host", 2)
        pool.reserve(0.0, 4.0)
        assert pool.utilization(4.0) == pytest.approx(0.5)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            Pool.with_servers("host", 0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=50),
        st.floats(min_value=0, max_value=5)), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_reserve_named_matches_min_then_reserve(self, requests):
        """Reserving at the fit found during the min-scan must pick the
        same server and place identically to the legacy min + re-fit."""
        pool = Pool.with_servers("host", 3)
        legacy_pool = Pool.with_servers("host", 3)
        for earliest, duration in requests:
            start, end, name = pool.reserve_named(earliest, duration)
            best = min(legacy_pool.servers,
                       key=lambda s: s.next_fit(earliest, duration))
            legacy_start, legacy_end = best.reserve(earliest, duration)
            assert (start, end, name) == (legacy_start, legacy_end,
                                          best.name)
