"""Tests for the extension and sensitivity experiment modules."""

import pytest

from repro.experiments import extensions, sensitivity
from repro.model import protein_bert_tiny

FAST_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                                intermediate_size=512, max_position=1024)


class TestModelZooScaling:
    def test_throughput_inverse_to_size(self):
        points = extensions.model_zoo_scaling(
            models=("protein-bert-compact", "tape-bert"), batch=16,
            seq_len=256)
        by_model = {p.model: p for p in points}
        assert by_model["protein-bert-compact"].throughput \
            > by_model["tape-bert"].throughput

    def test_storage_constant_across_models(self):
        points = extensions.model_zoo_scaling(
            models=("protein-bert-compact", "tape-bert"), batch=8,
            seq_len=128)
        storages = {p.prose_storage_bytes for p in points}
        assert len(storages) == 1


class TestSeq2SeqStudy:
    def test_overhead_bounded(self):
        points = extensions.seq2seq_study(config=FAST_CONFIG, batch=8,
                                          shapes=((128, 64),))
        assert len(points) == 1
        assert 1.0 < points[0].decoder_overhead < 4.0

    def test_format_renders(self):
        zoo = extensions.model_zoo_scaling(
            models=("protein-bert-compact",), batch=8, seq_len=128)
        seq2seq = extensions.seq2seq_study(config=FAST_CONFIG, batch=4,
                                           shapes=((64, 32),))
        from repro.downstream import TaskResult
        tasks = {"stability": TaskResult(
            task="stability", rank_correlation=0.9,
            pearson_correlation=0.9, num_train=96, num_test=48)}
        text = extensions.format_result((zoo, seq2seq, tasks))
        assert "model-zoo scalability" in text
        assert "encoder-decoder" in text


class TestSensitivityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(batch=32, seq_len=256)

    def test_all_knobs_present(self, result):
        assert set(result.knobs) == {"host throughput", "contention",
                                     "lane partition", "batch size"}

    def test_conclusion_robust(self, result):
        low, high = result.global_range
        assert low > 1.5          # ProSE clearly ahead everywhere

    def test_host_insensitive(self, result):
        low, high = result.range_for("host throughput")
        assert high / low < 1.25

    def test_format_renders(self, result):
        text = sensitivity.format_result(result)
        assert "speedup range" in text
