"""Tests for the fleet simulator: topology, health, scheduling, chaos."""

import pytest

from repro.fleet import (
    BackendSpec,
    ChaosEvent,
    ChaosScenario,
    DegradationAwareScheduler,
    FabricModel,
    FleetSimulator,
    FleetTopology,
    HealthMonitor,
    HealthState,
    HeartbeatConfig,
    Instance,
    LinkTier,
    build_fleet,
    build_scenario,
    resolve_target,
)
from repro.model.config import protein_bert_tiny
from repro.reliability import (
    DegradationPolicy,
    FaultModel,
    FaultRates,
    RetryPolicy,
)
from repro.telemetry import MetricsRegistry, Tracer

TINY = protein_bert_tiny()


def tiny_simulator(topology=None, **kwargs):
    kwargs.setdefault("model_config", TINY)
    kwargs.setdefault("seq_len", 64)
    kwargs.setdefault("reference_batch", 4)
    return FleetSimulator(topology or build_fleet(
        racks=2, hosts_per_rack=2, instances_per_host=2), **kwargs)


class TestTopology:
    def test_build_fleet_shape_and_ids(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=3)
        assert topology.racks == 2
        assert topology.hosts == 4
        assert len(topology.instances) == 12
        assert topology.instances[0].instance_id == "r0h0s0"
        assert topology.by_id("r1h1s2").rack == 1

    def test_fabric_tiers_from_coordinator(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=1)
        tiers = {instance.instance_id: topology.tier_of(instance)
                 for instance in topology.instances}
        assert tiers["r0h0s0"] is LinkTier.NVLINK
        assert tiers["r0h1s0"] is LinkTier.INTRA_RACK
        assert tiers["r1h0s0"] is LinkTier.INTER_RACK
        assert tiers["r1h1s0"] is LinkTier.INTER_RACK

    def test_transfer_cost_ordering(self):
        fabric = FabricModel()
        payload = 1e6
        assert (fabric.transfer_seconds(payload, LinkTier.NVLINK)
                < fabric.transfer_seconds(payload, LinkTier.INTRA_RACK)
                < fabric.transfer_seconds(payload, LinkTier.INTER_RACK))

    def test_duplicate_positions_rejected(self):
        instance = Instance(rack=0, host=0, slot=0)
        with pytest.raises(ValueError):
            FleetTopology(instances=(instance, Instance(rack=0, host=0,
                                                        slot=0)))

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            BackendSpec(kind="quantum")
        with pytest.raises(ValueError):
            BackendSpec(kind="a100",
                        hardware=BackendSpec().hardware)
        assert BackendSpec().hardware is not None  # prose auto-fills

    def test_heterogeneous_fleet_mixes_baselines(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2, heterogeneous=True)
        labels = {instance.backend.label for instance in topology.instances}
        assert any(label.startswith("prose:") for label in labels)
        assert "a100" in labels
        assert "tpuv3" in labels
        assert "a100" in topology.describe()


class TestHealthMonitor:
    def monitor(self, **kwargs):
        return HealthMonitor(["a", "b", "c"], **kwargs)

    def test_starts_healthy_at_full_capacity(self):
        monitor = self.monitor()
        assert monitor.state("a") is HealthState.HEALTHY
        assert monitor.capacity_factor("a") == 1.0
        assert monitor.alive_count() == 3

    def test_lifecycle_and_capacity_factors(self):
        monitor = self.monitor(heartbeat=HeartbeatConfig(
            recovering_capacity=0.5))
        monitor.transition("a", HealthState.DEGRADED, 1.0,
                           degraded_factor=0.25)
        assert monitor.capacity_factor("a") == 0.25
        monitor.transition("a", HealthState.DEAD, 2.0)
        assert monitor.capacity_factor("a") == 0.0
        assert monitor.alive_count() == 2
        monitor.transition("a", HealthState.RECOVERING, 3.0)
        assert monitor.capacity_factor("a") == 0.5
        monitor.transition("a", HealthState.HEALTHY, 4.0)
        assert monitor.capacity_factor("a") == 1.0
        states = [t.to_state for t in monitor.transitions_of("a")]
        assert states == [HealthState.DEGRADED, HealthState.DEAD,
                          HealthState.RECOVERING, HealthState.HEALTHY]

    def test_illegal_transitions_rejected(self):
        monitor = self.monitor()
        with pytest.raises(ValueError):
            monitor.transition("a", HealthState.RECOVERING, 1.0)
        monitor.transition("a", HealthState.DEAD, 1.0)
        with pytest.raises(ValueError):
            monitor.transition("a", HealthState.HEALTHY, 2.0)

    def test_link_factor_multiplies(self):
        monitor = self.monitor()
        monitor.set_link_factor("b", 0.4)
        assert monitor.capacity_factor("b") == 0.4
        monitor.transition("b", HealthState.DEGRADED, 1.0,
                           degraded_factor=0.5)
        assert monitor.capacity_factor("b") == pytest.approx(0.2)
        with pytest.raises(ValueError):
            monitor.set_link_factor("b", 0.0)

    def test_circuit_breaker_quarantines_flapper(self):
        monitor = self.monitor(circuit_breaker_failures=2)
        for _ in range(2):
            monitor.transition("c", HealthState.DEAD, 1.0)
            monitor.transition("c", HealthState.RECOVERING, 2.0)
            monitor.transition("c", HealthState.HEALTHY, 3.0)
        assert monitor.breaker_open("c")
        assert monitor.capacity_factor("c") == 0.0
        assert monitor.open_breakers() == ("c",)
        assert monitor.alive_count() == 2

    def test_detection_latency_scales_with_heartbeat(self):
        heartbeat = HeartbeatConfig(interval_fraction=0.02,
                                    miss_threshold=3)
        assert heartbeat.detection_seconds(10.0) == pytest.approx(0.6)


class TestScheduler:
    def scheduler(self, policy=None):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=1)
        rates = {inst.instance_id: 100.0 for inst in topology.instances}
        # Payload large enough that fabric-tier streaming time is on the
        # order of compute time, so topology visibly shapes the plan.
        return DegradationAwareScheduler(
            topology, rates, FabricModel(), policy or DegradationPolicy(),
            payload_bytes=1e8), topology

    def test_integral_plan_conserves_work(self):
        scheduler, topology = self.scheduler()
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        plan = scheduler.plan(101.0, monitor)
        assert plan.total == 101.0
        assert all(amount == int(amount)
                   for amount in (a.amount for a in plan.assignments))

    def test_topology_penalty_shifts_work_to_near_instances(self):
        scheduler, topology = self.scheduler()
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        plan = scheduler.plan(1000.0, monitor)
        amounts = {a.instance_id: a.amount for a in plan.assignments}
        # Same backend rate everywhere: only fabric distance differs.
        assert amounts["r0h0s0"] > amounts["r0h1s0"] > amounts["r1h0s0"]

    def test_dead_and_excluded_instances_get_nothing(self):
        scheduler, topology = self.scheduler()
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        monitor.transition("r0h0s0", HealthState.DEAD, 1.0)
        plan = scheduler.plan(30.0, monitor, exclude=("r0h1s0",))
        placed = {a.instance_id for a in plan.assignments}
        assert "r0h0s0" not in placed and "r0h1s0" not in placed
        assert plan.total == 30.0

    def test_no_schedulable_capacity_returns_none(self):
        scheduler, topology = self.scheduler()
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        for instance in topology.instances:
            monitor.transition(instance.instance_id, HealthState.DEAD, 1.0)
        assert scheduler.plan(10.0, monitor) is None

    def test_brownout_sheds_below_capacity_floor(self):
        scheduler, topology = self.scheduler(policy=DegradationPolicy(
            min_capacity_fraction=0.6, shed_fraction=0.5))
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        for instance_id in ("r0h1s0", "r1h0s0", "r1h1s0"):
            monitor.transition(instance_id, HealthState.DEAD, 1.0)
        plan = scheduler.plan(40.0, monitor, integral=False)
        assert plan.brownout
        assert plan.shed == pytest.approx(20.0)
        assert plan.total == pytest.approx(20.0)
        assert plan.capacity_fraction < 0.6

    def test_plan_is_deterministic(self):
        scheduler, topology = self.scheduler()
        monitor = HealthMonitor([i.instance_id
                                 for i in topology.instances])
        monitor.transition("r1h1s0", HealthState.DEGRADED, 1.0,
                           degraded_factor=0.3)
        assert (scheduler.plan(77.0, monitor)
                == scheduler.plan(77.0, monitor))


class TestChaosScenarios:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_fraction=-0.1, action="fail", target="rack:0")
        with pytest.raises(ValueError):
            ChaosEvent(at_fraction=0.1, action="explode", target="rack:0")
        with pytest.raises(ValueError):
            ChaosEvent(at_fraction=0.1, action="link_flap",
                       target="rack:0", duration_fraction=0.0)

    def test_events_sorted_by_time(self):
        scenario = ChaosScenario(
            name="s", description="d",
            events=(ChaosEvent(at_fraction=0.9, action="fail",
                               target="rack:0"),
                    ChaosEvent(at_fraction=0.1, action="fail",
                               target="rack:1")))
        assert [e.at_fraction for e in scenario.events] == [0.1, 0.9]

    def test_resolve_target_forms(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        assert len(resolve_target(topology, "rack:1")) == 4
        assert len(resolve_target(topology, "host:0/1")) == 2
        assert resolve_target(topology,
                              "instance:r0h0s1")[0].slot == 1
        with pytest.raises(ValueError):
            resolve_target(topology, "pod:3")

    def test_rack_power_loss_requires_two_racks(self):
        topology = build_fleet(racks=1, hosts_per_rack=2,
                               instances_per_host=2)
        with pytest.raises(ValueError):
            build_scenario("rack_power_loss", topology)
        with pytest.raises(KeyError):
            build_scenario("meteor_strike", topology)


class TestFleetSimulatorCleanRun:
    def test_no_faults_reproduces_nominal_plan_bit_identically(self):
        simulator = tiny_simulator()
        plan = simulator.nominal_plan(64)
        report = simulator.run(batch=64)
        assert report.makespan_seconds == report.nominal_makespan_seconds
        assert report.availability == 1.0
        expected = {a.instance_id: a.dispatch_seconds + a.amount
                    / simulator.scheduler.rates[a.instance_id]
                    for a in plan.assignments}
        for outcome in report.per_instance:
            assert outcome.finish_seconds == expected[outcome.instance_id]
            assert outcome.completed == outcome.allocated
        assert report.completed == 64.0
        assert report.shed == 0.0
        assert report.reshards == 0 and report.failures == 0

    def test_clean_run_is_deterministic(self):
        assert tiny_simulator().run(batch=48) == tiny_simulator().run(
            batch=48)

    def test_heterogeneous_backends_have_distinct_rates(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=1, heterogeneous=True)
        simulator = tiny_simulator(topology)
        rates = {label: simulator.scheduler.rates[instance.instance_id]
                 for label, instance in
                 ((instance.backend.label, instance)
                  for instance in topology.instances)}
        assert len(set(rates.values())) > 1
        report = simulator.run(batch=32)
        assert report.completed == 32.0

    def test_input_validation(self):
        simulator = tiny_simulator()
        with pytest.raises(ValueError):
            simulator.run(batch=0)
        with pytest.raises(ValueError):
            tiny_simulator(seq_len=0)


class TestFleetSimulatorChaos:
    def test_rack_power_loss_recovers_via_resharding(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(topology)
        scenario = build_scenario("rack_power_loss", topology)
        report = simulator.run(batch=64, scenario=scenario)
        assert report.failures == 4
        assert report.reshards > 0
        assert report.recovery_seconds > 0.0
        assert report.completed == pytest.approx(64.0)  # re-sharded
        assert report.goodput > 0.0
        assert report.availability < 1.0
        dead = [o for o in report.per_instance if o.final_state == "dead"]
        assert len(dead) == 4
        assert all(o.instance_id.startswith("r1") for o in dead)

    def test_chaos_run_is_deterministic(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        scenario = build_scenario("rolling_restart", topology)

        def run():
            return tiny_simulator(
                topology,
                fault_model=FaultModel(
                    FaultRates(link_transient=0.05), seed=7)).run(
                batch=64, scenario=scenario)

        assert run() == run()

    def test_slow_node_stretches_makespan(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(topology)
        report = simulator.run(batch=64,
                               scenario=build_scenario("slow_node",
                                                       topology))
        assert report.failures == 0
        assert (report.makespan_seconds
                > report.nominal_makespan_seconds)
        degraded = [o for o in report.per_instance
                    if o.final_state == "degraded"]
        assert len(degraded) == 1

    def test_link_flap_storm_degrades_then_clears(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(topology)
        report = simulator.run(
            batch=64, scenario=build_scenario("link_flap_storm", topology))
        assert report.failures == 0
        assert report.availability < 1.0
        flap_states = [t.to_state for t in report.transitions]
        assert HealthState.DEGRADED in flap_states

    def test_rolling_restart_recovers_everyone(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(topology)
        report = simulator.run(
            batch=64, scenario=build_scenario("rolling_restart", topology))
        assert report.completed == pytest.approx(64.0)
        assert report.failures == 8
        assert all(o.final_state in ("healthy", "recovering")
                   for o in report.per_instance)

    def test_circuit_breaker_opens_on_repeat_failures(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(
            topology,
            policy=DegradationPolicy(circuit_breaker_failures=1))
        report = simulator.run(
            batch=64, scenario=build_scenario("rolling_restart", topology))
        assert any(o.breaker_open for o in report.per_instance)
        assert report.completed > 0.0

    def test_brownout_sheds_load_when_capacity_collapses(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(
            topology,
            policy=DegradationPolicy(min_capacity_fraction=0.9,
                                     shed_fraction=0.5))
        report = simulator.run(
            batch=64, scenario=build_scenario("rack_power_loss", topology))
        assert report.brownouts > 0
        assert report.shed > 0.0
        assert report.completed < 64.0
        assert report.completed + report.shed == pytest.approx(64.0)

    def test_retry_policy_interplay_validated_at_run(self):
        simulator = tiny_simulator(
            retry_policy=RetryPolicy(backoff_base_seconds=1e6,
                                     backoff_cap_seconds=1e6))
        with pytest.raises(ValueError, match="straggler deadline"):
            simulator.run(batch=32)

    def test_telemetry_spans_and_metrics(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(topology)
        tracer = Tracer()
        metrics = MetricsRegistry()
        report = simulator.run(
            batch=64, scenario=build_scenario("rack_power_loss", topology),
            tracer=tracer, metrics=metrics)
        names = {span.name for span in tracer.spans}
        assert {"dispatch", "shard", "detection_window", "recovery_shard",
                "fleet_campaign"} <= names
        instant_names = {instant.name for instant in tracer.instants}
        assert {"instance_failure", "failure_detected",
                "reshard"} <= instant_names
        assert metrics.get("fleet/goodput").value == report.goodput
        assert (metrics.get("fleet/reshards").value
                == float(report.reshards))

    def test_spontaneous_failures_from_fault_model(self):
        topology = build_fleet(racks=2, hosts_per_rack=2,
                               instances_per_host=2)
        simulator = tiny_simulator(
            topology,
            fault_model=FaultModel(FaultRates(instance_failure=0.5),
                                   seed=3))
        report = simulator.run(batch=64)
        assert report.failures > 0
        assert report.completed > 0.0

    def test_report_summary_mentions_key_numbers(self):
        report = tiny_simulator().run(batch=32)
        summary = report.summary()
        assert "goodput=" in summary and "availability=" in summary
