"""Tests for the host CPU model."""

import pytest

from repro.sched import (
    CPU_ACTIVE_POWER_WATTS,
    CPU_DUTY_CYCLE,
    DRAM_POWER_WATTS,
    HOST_POWER_WATTS,
    HostModel,
)
from repro.trace import OpKind, elementwise_op


class TestHostPowerConstants:
    def test_paper_measurements(self):
        # Section 4.1: RAPL measured 50.21 W at 21.4% duty plus 6.23 W
        # DRAM.
        assert CPU_ACTIVE_POWER_WATTS == 50.21
        assert CPU_DUTY_CYCLE == 0.214
        assert DRAM_POWER_WATTS == 6.23
        assert HOST_POWER_WATTS == pytest.approx(50.21 * 0.214 + 6.23)


class TestHostModel:
    def test_elementwise_time_linear_in_elements(self):
        host = HostModel()
        small = host.op_seconds(elementwise_op(OpKind.SUM, (1000,)))
        large = host.op_seconds(elementwise_op(OpKind.SUM, (4000,)))
        assert large == pytest.approx(4 * small)

    def test_softmax_finish_two_passes(self):
        host = HostModel(elementwise_throughput=1e9)
        assert host.softmax_finish_seconds(1_000_000) \
            == pytest.approx(2e-3)

    def test_task_seconds_sums_ops(self):
        host = HostModel()
        ops = (elementwise_op(OpKind.SUM, (1000,)),
               elementwise_op(OpKind.DIV, (1000,)))
        assert host.task_seconds(ops) == pytest.approx(
            sum(host.op_seconds(op) for op in ops))

    def test_generic_math_uses_flops(self):
        host = HostModel(flops_throughput=1e9)
        layernorm = elementwise_op(OpKind.LAYERNORM, (1000,))
        assert host.op_seconds(layernorm) == pytest.approx(
            layernorm.flops / 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostModel(slots=0)
        with pytest.raises(ValueError):
            HostModel(elementwise_throughput=0)

    def test_aggregate_throughput(self):
        host = HostModel(slots=4, elementwise_throughput=1e9)
        assert host.aggregate_elementwise_throughput == pytest.approx(4e9)
