"""Cross-module integration tests: the full Figure 15 flow end to end."""

import numpy as np

from repro import ProSEEngine, best_perf, protein_bert_tiny
from repro.arch import SystolicArray, SimdOpcode, SimdStep, make_exp_lut
from repro.arch.accelerated_model import AcceleratedProteinBert
from repro.dataflow import ArrayType, DataflowKind, build_dataflow_graph
from repro.model import ProteinBert, to_bfloat16
from repro.proteins import ProteinTokenizer, SequenceGenerator
from repro.sched import Orchestrator
from repro.trace import TraceRecorder

CONFIG = protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                           intermediate_size=128)


class TestTraceToScheduleFlow:
    """Recorded trace -> dataflow graph -> schedule, as in Figure 15."""

    def test_recorded_trace_schedules(self):
        model = ProteinBert(CONFIG, seed=0)
        recorder = TraceRecorder()
        sequences = SequenceGenerator(seed=0).batch(2, 14)
        encoding = ProteinTokenizer().encode_batch(sequences)
        model.forward(encoding.ids, encoding.attention_mask, recorder)

        graph = build_dataflow_graph(list(recorder))
        assert graph.validate_acyclic()
        kinds = [df.kind for _, df in graph.dataflows]
        assert kinds.count(DataflowKind.DATAFLOW_1) == 10
        assert kinds.count(DataflowKind.DATAFLOW_2) == 2
        assert kinds.count(DataflowKind.DATAFLOW_3) == 2

    def test_engine_end_to_end(self):
        engine = ProSEEngine(hardware=best_perf(), model_config=CONFIG)
        report = engine.simulate(batch=8, seq_len=32)
        assert report.throughput > 0
        assert report.efficiency > 0
        comparison = engine.compare(engine.a100, batch=8, seq_len=32)
        assert comparison.speedup > 0


class TestFunctionalVsTimedConsistency:
    """The functional and analytic models must agree on work done."""

    def test_mac_counts_match_trace_flops(self):
        model = ProteinBert(CONFIG, seed=1)
        accelerated = AcceleratedProteinBert(model, array_size=8)
        rng = np.random.default_rng(0)
        ids = rng.integers(5, 25, size=(1, 8))
        accelerated.forward(ids)
        # Every traced GEMM flop is 2 x a MAC; embeddings/norms add none.
        recorder = TraceRecorder()
        model.forward(ids, recorder=recorder)
        from repro.trace import OpKind
        gemm_flops = sum(op.flops for op in recorder
                         if op.kind in (OpKind.MATMUL, OpKind.BMM))
        assert 2 * accelerated.stats.mac_operations == gemm_flops


class TestDataflow3Numerics:
    """Dataflow 3's split softmax must equal a plain softmax closely."""

    def test_exp_lut_softmax_matches_reference(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(0, 1.5, size=(12, 12)).astype(np.float32)
        array = SystolicArray(4, ArrayType.E)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        numerators = array.simd(shifted, SimdStep(SimdOpcode.EXP))
        probabilities = numerators / numerators.sum(axis=-1, keepdims=True)
        reference = np.exp(shifted) / np.exp(shifted).sum(
            axis=-1, keepdims=True)
        assert np.abs(probabilities - reference).max() < 0.02


class TestChainedVsUnchainedConsistency:
    """The chained-dataflow advantage must show up in the schedule."""

    def test_chaining_reduces_traffic_and_time(self):
        import dataclasses
        chained = best_perf()
        unchained = dataclasses.replace(chained, chained=False)
        fast = Orchestrator(chained).run(CONFIG, batch=8, seq_len=64)
        slow = Orchestrator(unchained).run(CONFIG, batch=8, seq_len=64)
        assert slow.total_stream_bytes > fast.total_stream_bytes
        assert slow.makespan_seconds >= fast.makespan_seconds


class TestPrecisionFlow:
    """bf16 rounding composes consistently across layers of the stack."""

    def test_systolic_output_representable(self):
        rng = np.random.default_rng(4)
        array = SystolicArray(8, ArrayType.M)
        a = rng.normal(size=(16, 24)).astype(np.float32)
        b = rng.normal(size=(24, 16)).astype(np.float32)
        out = array.execute_chain(a, b)
        from repro.model import is_bfloat16
        assert is_bfloat16(out).all()

    def test_exp_lut_agrees_with_systolic_path(self):
        lut = make_exp_lut()
        array = SystolicArray(4, ArrayType.E)
        values = np.linspace(-4, 0, 16).reshape(4, 4).astype(np.float32)
        via_array = array.simd(values, SimdStep(SimdOpcode.EXP))
        via_lut = lut.lookup(to_bfloat16(values))
        assert np.array_equal(via_array, via_lut)
