"""Tests for the host-accelerator command interface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.isa import (
    PACKET_BYTES,
    Command,
    CommandDecodeError,
    Opcode,
    decode,
    decode_stream,
    encode_stream,
    lower_dataflow,
)
from repro.dataflow import ArrayType, DataflowKind, build_graph_for
from repro.model import protein_bert_tiny


def dataflows_of(kind):
    graph = build_graph_for(protein_bert_tiny(), batch=1, seq_len=16)
    return [df for _, df in graph.dataflows if df.kind is kind]


class TestEncoding:
    def test_fixed_packet_size(self):
        command = Command(Opcode.MATMUL, ArrayType.M, (128, 768, 768))
        assert len(command.encode()) == PACKET_BYTES

    def test_roundtrip(self):
        command = Command(Opcode.MATDIV, ArrayType.E, (4096, 0, 0),
                          alpha=8.0, beta=0.0, use_input_buffer=False)
        decoded = decode(command.encode())
        assert decoded == command

    @given(st.sampled_from(list(Opcode)),
           st.sampled_from(list(ArrayType)),
           st.tuples(st.integers(0, 2 ** 40), st.integers(0, 2 ** 40),
                     st.integers(0, 2 ** 40)),
           st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, opcode, array_type, dims, buffered):
        command = Command(opcode, array_type, dims,
                          use_input_buffer=buffered)
        assert decode(command.encode()) == command

    def test_negative_dims_rejected(self):
        command = Command(Opcode.MATMUL, ArrayType.M, (-1, 2, 3))
        with pytest.raises(ValueError):
            command.encode()


class TestDecodeErrors:
    def test_wrong_length(self):
        with pytest.raises(CommandDecodeError):
            decode(b"\x00" * 10)

    def test_bad_magic(self):
        packet = bytearray(
            Command(Opcode.MATMUL, ArrayType.M, (1, 1, 1)).encode())
        packet[0] = 0x00
        with pytest.raises(CommandDecodeError):
            decode(bytes(packet))

    def test_unknown_opcode(self):
        packet = bytearray(
            Command(Opcode.MATMUL, ArrayType.M, (1, 1, 1)).encode())
        packet[1] = 0xEE
        with pytest.raises(CommandDecodeError):
            decode(bytes(packet))

    def test_stream_length_validated(self):
        with pytest.raises(CommandDecodeError):
            decode_stream(b"\x00" * (PACKET_BYTES + 1))


class TestLowering:
    def test_dataflow1_sequence(self):
        df1 = dataflows_of(DataflowKind.DATAFLOW_1)[0]
        commands = lower_dataflow(df1)
        opcodes = [c.opcode for c in commands]
        assert opcodes[0] == Opcode.MATMUL
        assert opcodes[-1] == Opcode.WRITEBACK
        assert Opcode.MULADD in opcodes
        assert all(c.array_type is ArrayType.M for c in commands)

    def test_dataflow2_includes_gelu(self):
        df2 = dataflows_of(DataflowKind.DATAFLOW_2)[0]
        opcodes = [c.opcode for c in lower_dataflow(df2)]
        assert Opcode.GELU in opcodes

    def test_dataflow3_has_mid_writeback(self):
        df3 = dataflows_of(DataflowKind.DATAFLOW_3)[0]
        opcodes = [c.opcode for c in lower_dataflow(df3)]
        # Exp results drain to the host (softmax finish) before the second
        # MatMul: WRITEBACK appears twice.
        assert opcodes.count(Opcode.WRITEBACK) == 2
        assert opcodes.index(Opcode.EXP) \
            < opcodes.index(Opcode.WRITEBACK) \
            < opcodes.index(Opcode.MATMUL, opcodes.index(Opcode.EXP))

    def test_matdiv_carries_divisor(self):
        df3 = dataflows_of(DataflowKind.DATAFLOW_3)[0]
        commands = lower_dataflow(df3)
        matdiv = next(c for c in commands if c.opcode is Opcode.MATDIV)
        # The attention scale divides by sqrt(head_dim) = 4 for the tiny
        # config (head_dim 16).
        assert matdiv.alpha == pytest.approx(4.0)

    def test_stream_roundtrip(self):
        df1 = dataflows_of(DataflowKind.DATAFLOW_1)[0]
        commands = lower_dataflow(df1)
        assert decode_stream(encode_stream(commands)) == commands
