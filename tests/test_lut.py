"""Tests for the GELU/Exp two-level lookup tables (Figures 13-14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    EXP_EXPONENT_WINDOW,
    GELU_EXPONENT_WINDOW,
    make_exp_lut,
    make_gelu_lut,
)
from repro.model import all_bf16_values, gelu, is_bfloat16, to_bfloat16


@pytest.fixture(scope="module")
def gelu_lut():
    return make_gelu_lut()


@pytest.fixture(scope="module")
def exp_lut():
    return make_exp_lut()


class TestTableSizes:
    def test_gelu_table_is_4kb(self, gelu_lut):
        assert gelu_lut.table_bytes == 4096

    def test_exp_table_is_6kb(self, exp_lut):
        assert exp_lut.table_bytes == 6144

    def test_windows_match_paper(self, gelu_lut, exp_lut):
        assert gelu_lut.spec.exponent_window == (-4, 3)
        assert exp_lut.spec.exponent_window == (-6, 5)
        assert GELU_EXPONENT_WINDOW == (-4, 3)
        assert EXP_EXPONENT_WINDOW == (-6, 5)

    def test_entry_counts(self, gelu_lut, exp_lut):
        assert gelu_lut.num_entries == 2 * 8 * 128
        assert exp_lut.num_entries == 2 * 12 * 128


class TestGeluPolicy:
    def test_in_window_matches_reference_at_bf16(self, gelu_lut):
        values = all_bf16_values((-4, 3))
        looked = gelu_lut.lookup(values)
        reference = to_bfloat16(gelu(values))
        assert np.array_equal(looked, reference)

    def test_below_window_is_zero(self, gelu_lut):
        assert gelu_lut.lookup_scalar(2.0 ** -5) == 0.0
        assert gelu_lut.lookup_scalar(-(2.0 ** -5)) == 0.0

    def test_above_window_positive_is_identity(self, gelu_lut):
        assert gelu_lut.lookup_scalar(32.0) == 32.0

    def test_above_window_negative_is_zero(self, gelu_lut):
        assert gelu_lut.lookup_scalar(-32.0) == 0.0

    def test_worst_case_error_small_over_activation_range(self, gelu_lut):
        xs = np.linspace(-8.0, 8.0, 20001).astype(np.float32)
        assert gelu_lut.max_absolute_error(xs) < 0.05

    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_outputs_are_bfloat16(self, value):
        lut = make_gelu_lut()
        result = np.array([lut.lookup_scalar(value)], dtype=np.float32)
        assert is_bfloat16(result).all()


class TestExpPolicy:
    def test_in_window_matches_reference_at_bf16(self, exp_lut):
        values = all_bf16_values((-6, 5))
        # Restrict to the softmax range (exponent-subtracted inputs <= 0).
        values = values[values <= 0]
        looked = exp_lut.lookup(values)
        reference = to_bfloat16(np.exp(values))
        assert np.array_equal(looked, reference)

    def test_below_window_is_one(self, exp_lut):
        assert exp_lut.lookup_scalar(2.0 ** -7) == 1.0
        assert exp_lut.lookup_scalar(-(2.0 ** -7)) == 1.0

    def test_large_negative_saturates_to_zero(self, exp_lut):
        assert exp_lut.lookup_scalar(-100.0) == 0.0

    def test_large_positive_saturates_to_max(self, exp_lut):
        result = exp_lut.lookup_scalar(100.0)
        assert result > 3e38

    def test_exp_positive_monotone_on_grid(self, exp_lut):
        xs = np.linspace(-10, 3, 400).astype(np.float32)
        ys = exp_lut.lookup(xs)
        assert (np.diff(ys) >= 0).all()

    def test_softmax_via_lut_close_to_reference(self, exp_lut):
        rng = np.random.default_rng(0)
        scores = rng.normal(0, 2, size=(16, 32)).astype(np.float32)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        numerators = exp_lut.lookup(shifted)
        probabilities = numerators / numerators.sum(axis=-1, keepdims=True)
        reference = np.exp(shifted) / np.exp(shifted).sum(
            axis=-1, keepdims=True)
        assert np.abs(probabilities - reference).max() < 0.02


class TestDenseGroupedParity:
    """The dense-gather lookup must be bit-identical to the legacy
    grouped two-level walk over the *entire* bfloat16 domain."""

    @staticmethod
    def _all_bf16_patterns():
        """Every 16-bit bfloat16 pattern as float32: finite values of both
        signs (in-window, below, above), ±inf, and every NaN payload."""
        index = np.arange(1 << 16, dtype=np.uint32)
        return (index << np.uint32(16)).view(np.float32)

    @pytest.mark.parametrize("lut_name", ["gelu", "exp"])
    def test_exhaustive_bit_parity(self, lut_name, gelu_lut, exp_lut):
        lut = gelu_lut if lut_name == "gelu" else exp_lut
        values = self._all_bf16_patterns()
        dense = lut.lookup(values)
        grouped = lut.lookup_grouped(values)
        # Bitwise comparison: NaNs must map to the same pattern too.
        assert np.array_equal(dense.view(np.uint32),
                              grouped.view(np.uint32))

    @pytest.mark.parametrize("lut_name", ["gelu", "exp"])
    def test_assume_bf16_bit_parity(self, lut_name, gelu_lut, exp_lut):
        """Skipping the input rounding on exact bf16 patterns changes
        nothing (to_bfloat16 idempotence); NaN payloads are exempt since
        producers only ever emit the canonical NaN."""
        lut = gelu_lut if lut_name == "gelu" else exp_lut
        values = self._all_bf16_patterns()
        values = values[~np.isnan(values)]
        values = np.concatenate(
            [values, np.array([np.nan], dtype=np.float32)])
        fast = lut.lookup(values, assume_bf16=True)
        slow = lut.lookup(values)
        assert np.array_equal(fast.view(np.uint32), slow.view(np.uint32))

    def test_non_bf16_inputs_round_first(self, gelu_lut):
        rng = np.random.default_rng(7)
        fine = rng.normal(scale=30, size=4096).astype(np.float32)
        assert np.array_equal(gelu_lut.lookup(fine).view(np.uint32),
                              gelu_lut.lookup_grouped(fine).view(np.uint32))


class TestLookupMechanics:
    def test_vector_lookup_matches_scalar(self, gelu_lut):
        values = np.array([-3.0, -0.5, 0.7, 2.1, 9.9], dtype=np.float32)
        vector = gelu_lut.lookup(values)
        scalars = [gelu_lut.lookup_scalar(float(v)) for v in values]
        assert np.allclose(vector, scalars)

    def test_preserves_shape(self, exp_lut):
        values = np.zeros((3, 5, 2), dtype=np.float32)
        assert exp_lut.lookup(values).shape == (3, 5, 2)

    def test_input_rounded_to_bf16_first(self, gelu_lut):
        fine = np.float32(1.0 + 2.0 ** -12)
        assert gelu_lut.lookup_scalar(float(fine)) \
            == gelu_lut.lookup_scalar(1.0)
