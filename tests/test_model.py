"""Tests for the NumPy Protein BERT model: layers, attention, encoder."""

import numpy as np
import pytest

from repro.model import (
    ATTENTION_MASK_VALUE,
    BertConfig,
    Embedding,
    LayerNorm,
    Linear,
    ProteinBert,
    gelu,
    gelu_exact,
    initialize_weights,
    layer_norm,
    load_weights,
    protein_bert_base,
    protein_bert_tiny,
    save_weights,
    softmax,
    validate_weights,
)
from repro.model.weights import pretrained_like_weights


class TestActivations:
    def test_gelu_at_zero(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_gelu_large_positive_is_identity(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)

    def test_gelu_large_negative_is_zero(self):
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_gelu_tanh_matches_exact(self):
        xs = np.linspace(-5, 5, 101)
        assert np.allclose(gelu(xs), gelu_exact(xs), atol=2e-3)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7)).astype(np.float32)
        assert np.allclose(softmax(x).sum(axis=-1), 1.0, atol=1e-6)

    def test_softmax_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        assert np.allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_softmax_numerically_stable_for_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]], dtype=np.float32)
        result = softmax(x)
        assert np.isfinite(result).all()

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(1).normal(3.0, 5.0, size=(10, 16))
        gamma = np.ones(16, dtype=np.float32)
        beta = np.zeros(16, dtype=np.float32)
        normalized = layer_norm(x, gamma, beta)
        assert np.allclose(normalized.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(normalized.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self):
        x = np.random.default_rng(2).normal(size=(4, 8)).astype(np.float32)
        gamma = np.full(8, 2.0, dtype=np.float32)
        beta = np.full(8, 1.0, dtype=np.float32)
        normalized = layer_norm(x, gamma, beta)
        assert np.allclose(normalized.mean(axis=-1), 1.0, atol=1e-5)


class TestBertConfig:
    def test_defaults_are_bert_base(self):
        config = protein_bert_base()
        assert config.hidden_size == 768
        assert config.num_layers == 12
        assert config.num_heads == 12
        assert config.intermediate_size == 3072
        assert config.head_dim == 64

    def test_vocab_is_protein_alphabet(self):
        assert protein_bert_base().vocab_size == 30

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            BertConfig(hidden_size=100, num_heads=12)

    def test_positive_fields_enforced(self):
        with pytest.raises(ValueError):
            BertConfig(num_layers=0)

    def test_parameter_count_scale(self):
        # BERT-base without the word-piece vocab: ~85M encoder params
        # plus protein/position embeddings.
        count = protein_bert_base().parameter_count
        assert 85_000_000 < count < 95_000_000


class TestLayers:
    def test_linear_matches_numpy(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(8, 4)).astype(np.float32)
        bias = rng.normal(size=4).astype(np.float32)
        x = rng.normal(size=(3, 8)).astype(np.float32)
        layer = Linear(weight, bias)
        assert np.allclose(layer.forward(x), x @ weight + bias, atol=1e-6)

    def test_linear_shape_validation(self):
        weight = np.zeros((8, 4), dtype=np.float32)
        layer = Linear(weight)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 5), dtype=np.float32))

    def test_linear_bias_shape_validation(self):
        with pytest.raises(ValueError):
            Linear(np.zeros((8, 4)), bias=np.zeros(5))

    def test_embedding_lookup(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        layer = Embedding(table)
        out = layer.forward(np.array([[0, 3], [1, 1]]))
        assert out.shape == (2, 2, 3)
        assert np.array_equal(out[0, 1], table[3])

    def test_embedding_out_of_range(self):
        layer = Embedding(np.zeros((4, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            layer.forward(np.array([[4]]))

    def test_layernorm_module_matches_function(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 5, 8)).astype(np.float32)
        gamma = rng.normal(size=8).astype(np.float32)
        beta = rng.normal(size=8).astype(np.float32)
        module = LayerNorm(gamma, beta)
        assert np.allclose(module.forward(x), layer_norm(x, gamma, beta))


class TestProteinBert:
    @pytest.fixture(scope="class")
    def tiny(self):
        config = protein_bert_tiny()
        return config, ProteinBert(config, seed=0)

    def test_forward_shape(self, tiny):
        config, model = tiny
        ids = np.zeros((2, 10), dtype=np.int64)
        out = model.forward(ids)
        assert out.shape == (2, 10, config.hidden_size)

    def test_forward_deterministic(self, tiny):
        config, model = tiny
        ids = np.full((1, 8), 5, dtype=np.int64)
        assert np.array_equal(model.forward(ids), model.forward(ids))

    def test_sequence_too_long_rejected(self, tiny):
        config, model = tiny
        ids = np.zeros((1, config.max_position + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            model.forward(ids)

    def test_mask_changes_output(self, tiny):
        config, model = tiny
        rng = np.random.default_rng(0)
        ids = rng.integers(5, 25, size=(1, 8))
        mask = np.ones((1, 8), dtype=np.int64)
        masked = mask.copy()
        masked[0, -3:] = 0
        assert not np.allclose(model.forward(ids, mask),
                               model.forward(ids, masked))

    def test_padding_does_not_change_real_token_features(self, tiny):
        config, model = tiny
        rng = np.random.default_rng(1)
        ids = rng.integers(5, 25, size=(1, 6))
        mask = np.ones((1, 6), dtype=np.int64)
        out_short = model.forward(ids, mask)
        padded = np.concatenate(
            [ids, np.zeros((1, 4), dtype=np.int64)], axis=1)
        padded_mask = np.concatenate(
            [mask, np.zeros((1, 4), dtype=np.int64)], axis=1)
        out_padded = model.forward(padded, padded_mask)
        assert np.allclose(out_short[0], out_padded[0, :6], atol=1e-4)

    def test_features_mean_pool_with_mask(self, tiny):
        config, model = tiny
        ids = np.full((1, 6), 7, dtype=np.int64)
        mask = np.array([[1, 1, 1, 0, 0, 0]])
        features = model.features(ids, mask)
        hidden = model.forward(ids, mask)
        assert np.allclose(features[0], hidden[0, :3].mean(axis=0),
                           atol=1e-6)

    def test_attention_mask_value_is_large_negative(self):
        assert ATTENTION_MASK_VALUE <= -1e8


class TestWeights:
    def test_initialization_deterministic(self):
        config = protein_bert_tiny()
        a = initialize_weights(config, seed=5)
        b = initialize_weights(config, seed=5)
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_initialization_covers_all_layers(self):
        config = protein_bert_tiny(num_layers=3)
        weights = initialize_weights(config)
        assert "layer.2.output.weight" in weights
        assert "layer.3.output.weight" not in weights

    def test_truncated_normal_bounds(self):
        weights = initialize_weights(protein_bert_tiny(), seed=0)
        w = weights["layer.0.attention.query.weight"]
        assert np.abs(w).max() <= 0.04 + 1e-6

    def test_save_load_roundtrip(self, tmp_path):
        config = protein_bert_tiny()
        weights = initialize_weights(config, seed=1)
        path = tmp_path / "weights.npz"
        save_weights(weights, path)
        loaded = load_weights(path)
        assert set(loaded) == set(weights)
        assert all(np.array_equal(loaded[k], weights[k]) for k in weights)

    def test_validate_rejects_missing(self):
        config = protein_bert_tiny()
        weights = initialize_weights(config)
        del weights["layer.0.output.bias"]
        with pytest.raises(ValueError):
            validate_weights(weights, config)

    def test_validate_rejects_bad_shape(self):
        config = protein_bert_tiny()
        weights = initialize_weights(config)
        weights["layer.0.output.bias"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(ValueError):
            validate_weights(weights, config)

    def test_pretrained_like_embeds_descriptors(self):
        config = protein_bert_tiny()
        weights = pretrained_like_weights(config, seed=0)
        table = weights["embeddings.token"]
        from repro.proteins import DEFAULT_VOCABULARY, HYDROPATHY
        ile = DEFAULT_VOCABULARY.index("I")
        arg = DEFAULT_VOCABULARY.index("R")
        # Hydropathy dim: isoleucine strongly positive, arginine negative.
        assert table[ile, 0] > 0 > table[arg, 0]
        assert table[ile, 0] == pytest.approx(
            0.3 * HYDROPATHY["I"] / 4.5, rel=1e-5)

    def test_pretrained_like_keeps_shapes_valid(self):
        config = protein_bert_tiny()
        validate_weights(pretrained_like_weights(config), config)
