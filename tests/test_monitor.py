"""Tests for the monitoring layer: SLOs, burn-rate alerts, simulators.

The headline invariants: enabling a monitor changes *no* simulated
number (bit-parity), every chaos scenario pages after its fault, and
the whole pipeline is deterministic per seed.
"""

import dataclasses

import pytest

from repro.experiments import alert_timelines
from repro.fleet import FleetSimulator, build_fleet, build_scenario
from repro.model.config import protein_bert_tiny
from repro.monitor import (
    PAGE,
    TICKET,
    BurnRateRule,
    Monitor,
    SLO,
    ThresholdRule,
    budget_gauge,
    fleet_monitor,
    format_alert_report,
    render_dashboard,
    serving_monitor,
    sparkline,
)
from repro.proteins.workloads import screening_campaign
from repro.reliability import (
    DegradationPolicy,
    FaultModel,
    FaultRates,
    RetryPolicy,
    derive_task_seed,
)
from repro.system.serving import CampaignSimulator
from repro.telemetry import TimeSeries

TINY = protein_bert_tiny()

CHAOS_SCENARIOS = ("rack_power_loss", "link_flap_storm", "slow_node",
                   "rolling_restart")


class TestDeclarations:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(name="x", objective="made-up")
        with pytest.raises(ValueError):
            SLO(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", latency_multiple=0.5)
        assert SLO(name="x", target=0.99).budget_fraction \
            == pytest.approx(0.01)

    def test_burn_rule_validation(self):
        with pytest.raises(ValueError, match="short <= long"):
            BurnRateRule(name="r", slo="x", long_window_fraction=0.01,
                         short_window_fraction=0.05)
        with pytest.raises(ValueError):
            BurnRateRule(name="r", slo="x", burn_threshold=0.0)
        with pytest.raises(ValueError):
            BurnRateRule(name="r", slo="x", severity="email")

    def test_threshold_rule_ops(self):
        rule = ThresholdRule(name="r", series="s", op=">=", threshold=2.0)
        assert rule.violated(2.0) and rule.violated(3.0)
        assert not rule.violated(1.0)
        with pytest.raises(ValueError):
            ThresholdRule(name="r", series="s", op="!=")

    def test_monitor_rejects_unknown_slo_reference(self):
        with pytest.raises(ValueError, match="unknown SLO"):
            Monitor(rules=(BurnRateRule(name="r", slo="ghost"),))

    def test_monitor_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate SLO"):
            Monitor(slos=(SLO(name="a"), SLO(name="a")))
        with pytest.raises(ValueError, match="duplicate rule"):
            Monitor(rules=(ThresholdRule(name="r", series="s"),
                           ThresholdRule(name="r", series="t")))


class TestMonitorLifecycle:
    def test_must_begin_before_use(self):
        monitor = Monitor()
        with pytest.raises(ValueError, match="begin"):
            monitor.record(0.0, "s", 1.0)
        with pytest.raises(ValueError, match="begin"):
            monitor.evaluate(0.0)

    def test_begin_twice_raises(self):
        monitor = Monitor()
        monitor.begin(1.0)
        with pytest.raises(ValueError, match="already armed"):
            monitor.begin(1.0)

    def test_sample_interval_from_horizon(self):
        monitor = Monitor(samples=128)
        monitor.begin(12.8)
        assert monitor.sample_interval == pytest.approx(0.1)

    def test_unknown_slo_event_is_a_no_op(self):
        monitor = Monitor(slos=(SLO(name="availability"),))
        monitor.begin(1.0)
        monitor.slo_event(0.1, "ghost", good=1.0)  # must not raise


class TestBurnRateAlerting:
    def _monitor(self):
        monitor = Monitor(
            slos=(SLO(name="availability", target=0.9),),
            rules=(BurnRateRule(name="fast", slo="availability",
                                severity=PAGE, burn_threshold=2.0,
                                long_window_fraction=1.0,
                                short_window_fraction=0.5),),
            samples=4)
        monitor.begin(1.0)
        return monitor

    def test_fires_then_resolves(self):
        monitor = self._monitor()
        # Half the events are bad: error rate 0.5 over a 0.1 budget is
        # burn 5.0, over threshold in both windows -> page.
        monitor.slo_event(0.5, "availability", good=1.0, bad=1.0)
        fired = monitor.evaluate(0.5)
        assert len(fired) == 1
        assert fired[0].severity == PAGE
        assert fired[0].value == pytest.approx(5.0)
        assert fired[0].active
        # A flood of good events dilutes both windows below threshold.
        monitor.slo_event(1.0, "availability", good=10.0)
        assert monitor.evaluate(1.0) == ()
        assert monitor.alerts[0].resolved_at == pytest.approx(1.0)
        assert not monitor.alerts[0].active

    def test_budget_accounting(self):
        monitor = self._monitor()
        monitor.slo_event(0.5, "availability", good=1.0, bad=1.0)
        monitor.evaluate(0.5)
        monitor.slo_event(1.0, "availability", good=10.0)
        monitor.evaluate(1.0)
        report = monitor.finalize(1.0)
        (budget,) = report.budgets
        # 1 bad of 12 total against a 10% budget: 1 / 1.2 consumed.
        assert budget.consumed_fraction == pytest.approx(1.0 / 1.2)
        assert budget.remaining_fraction == pytest.approx(1.0 - 1.0 / 1.2)
        assert report.worst_burn_rate == pytest.approx(5.0)

    def test_no_events_no_alerts(self):
        monitor = self._monitor()
        assert monitor.evaluate(0.5) == ()
        assert monitor.finalize(1.0).alerts == ()


class TestThresholdAlerting:
    def test_edge_triggered_refire_appends_new_alert(self):
        monitor = Monitor(rules=(ThresholdRule(name="shed",
                                               series="fleet/shed",
                                               op=">", threshold=0.0,
                                               severity=TICKET),),
                          samples=8)
        monitor.begin(1.0)
        monitor.record(0.1, "fleet/shed", 0.0)
        assert monitor.evaluate(0.1) == ()
        monitor.record(0.2, "fleet/shed", 1.0)
        assert len(monitor.evaluate(0.2)) == 1
        monitor.record(0.3, "fleet/shed", 0.0)
        monitor.evaluate(0.3)
        monitor.record(0.4, "fleet/shed", 3.0)
        monitor.evaluate(0.4)
        assert len(monitor.alerts) == 2  # two activations, two alerts
        first, second = monitor.alerts
        assert first.resolved_at == pytest.approx(0.3)
        assert second.fired_at == pytest.approx(0.4)
        assert second.active
        assert second.peak_value == pytest.approx(3.0)


def tiny_simulator(scenario_name=None, seed=2022):
    topology = build_fleet(racks=2, hosts_per_rack=2,
                           instances_per_host=2)
    simulator = FleetSimulator(
        topology, model_config=TINY,
        fault_model=FaultModel(FaultRates(),
                               seed=derive_task_seed(seed, "monitor")),
        policy=DegradationPolicy(min_capacity_fraction=0.25),
        seq_len=64, reference_batch=4)
    scenario = (build_scenario(scenario_name, topology)
                if scenario_name else None)
    return simulator, scenario


class TestFleetIntegration:
    @pytest.mark.parametrize("name", (None,) + CHAOS_SCENARIOS)
    def test_monitoring_is_bit_identical(self, name):
        simulator, scenario = tiny_simulator(name)
        bare = simulator.run(batch=64, scenario=scenario)
        monitored = simulator.run(batch=64, scenario=scenario,
                                  monitor=fleet_monitor())
        assert monitored.slo is not None
        assert dataclasses.replace(monitored, slo=None) == bare

    @pytest.mark.parametrize("name", CHAOS_SCENARIOS)
    def test_every_chaos_scenario_pages_after_its_fault(self, name):
        simulator, scenario = tiny_simulator(name)
        monitor = fleet_monitor()
        report = simulator.run(batch=64, scenario=scenario,
                               monitor=monitor)
        outcome = report.slo
        assert outcome.pages >= 1, outcome.summary()
        assert outcome.fault_seconds is not None
        assert outcome.first_page_seconds is not None
        assert outcome.page_delay_seconds >= 0.0
        assert outcome.worst_burn_rate > 1.0
        assert monitor.report().first_alert(PAGE) is not None

    def test_clean_run_stays_quiet(self):
        simulator, _ = tiny_simulator(None)
        report = simulator.run(batch=64, monitor=fleet_monitor())
        assert report.slo.alerts == 0
        assert report.slo.budget_remaining == pytest.approx(1.0)
        assert "alerts=0" in report.summary()

    def test_deterministic_per_seed(self):
        first = tiny_simulator("rack_power_loss")
        second = tiny_simulator("rack_power_loss")
        report_a = first[0].run(batch=64, scenario=first[1],
                                monitor=fleet_monitor())
        report_b = second[0].run(batch=64, scenario=second[1],
                                 monitor=fleet_monitor())
        assert report_a == report_b

    def test_summary_mentions_slo_outcome(self):
        simulator, scenario = tiny_simulator("rack_power_loss")
        report = simulator.run(batch=64, scenario=scenario,
                               monitor=fleet_monitor())
        text = report.summary()
        assert "pages=" in text and "budget_left=" in text


class TestServingIntegration:
    def _simulator(self, rate=0.15, seed=11):
        fault_model = FaultModel(
            FaultRates(batch_failure=rate, straggler=rate,
                       link_transient=rate / 10.0),
            seed=derive_task_seed(seed, rate))
        config = protein_bert_tiny(max_position=2048)
        return CampaignSimulator(
            model_config=config, max_batch=8, fault_model=fault_model,
            retry_policy=RetryPolicy(backoff_base_seconds=0.002,
                                     backoff_cap_seconds=0.05))

    def test_monitoring_is_bit_identical(self):
        workload = screening_campaign(library_size=32, seed=11)
        bare = self._simulator().run_on_prose(workload)
        monitored = self._simulator().run_on_prose(
            workload, monitor=serving_monitor())
        assert monitored.slo is not None
        assert dataclasses.replace(monitored, slo=None) == bare

    def test_faulty_campaign_burns_budget(self):
        workload = screening_campaign(library_size=32, seed=11)
        monitor = serving_monitor()
        report = self._simulator().run_on_prose(workload, monitor=monitor)
        assert report.slo.worst_burn_rate > 0.0
        budgets = {b.slo: b for b in monitor.report().budgets}
        assert set(budgets) == {"latency", "availability"}


class TestAlertTimelinesExperiment:
    def test_timeline_table_covers_every_scenario(self):
        result = alert_timelines.run(batch=64)
        text = alert_timelines.format_result(result)
        assert "baseline" in text
        for name in CHAOS_SCENARIOS:
            assert name in text
        assert "fault ms" in text and "page lag" in text
        by_name = dict(zip(result.scenarios, result.outcomes))
        assert by_name["baseline"].pages == 0
        for name in CHAOS_SCENARIOS:
            assert by_name[name].pages >= 1


class TestDashboard:
    def test_sparkline_shapes(self):
        series = TimeSeries("s")
        assert sparkline(series, width=8) == " " * 8
        series.append(0.0, 5.0)
        series.append(1.0, 5.0)
        flat = sparkline(series, width=8, end=1.0)
        assert len(flat) == 8 and len(set(flat)) == 1  # constant: flat
        series.append(2.0, 50.0)
        strip = sparkline(series, width=8, end=2.0)
        assert strip[-1] == "█"  # peak renders as the tallest glyph

    def test_budget_gauge(self):
        assert budget_gauge(1.0, width=4) == "[####]"
        assert budget_gauge(0.0, width=4) == "[....]"
        assert budget_gauge(0.5, width=4) == "[##..]"
        assert budget_gauge(-1.0, width=4) == "[....]"  # clamped

    def test_dashboard_and_alert_report_render(self):
        simulator, scenario = tiny_simulator("rack_power_loss")
        monitor = fleet_monitor()
        simulator.run(batch=64, scenario=scenario, monitor=monitor)
        text = render_dashboard(monitor, width=24)
        assert "monitor 'fleet'" in text
        assert "fleet/capacity_fraction" in text
        assert "error budgets" in text
        assert "availability" in text
        report_text = format_alert_report(monitor.report())
        assert "mark" in report_text and "fault" in report_text
        assert "after fault" in report_text

    def test_empty_alert_report(self):
        monitor = Monitor(samples=2)
        monitor.begin(1.0)
        monitor.evaluate(1.0)
        assert "(no alerts fired)" in format_alert_report(
            monitor.finalize(1.0))
