"""Tests for the multithreaded orchestration simulator (Figure 8)."""


import pytest

from repro.arch import best_perf, homogeneous, infinite_link, nvlink
from repro.model import protein_bert_tiny
from repro.sched import HostModel, Orchestrator

# A small but structurally complete workload for fast scheduling tests.
CONFIG = protein_bert_tiny(num_layers=4, hidden_size=128, num_heads=4,
                           intermediate_size=512, max_position=256)


@pytest.fixture(scope="module")
def result():
    return Orchestrator(best_perf()).run(CONFIG, batch=16, seq_len=128)


class TestScheduleBasics:
    def test_makespan_positive(self, result):
        assert result.makespan_seconds > 0

    def test_throughput_is_batch_over_makespan(self, result):
        assert result.throughput == pytest.approx(
            16 / result.makespan_seconds)

    def test_utilizations_in_unit_interval(self, result):
        for value in result.array_utilization.values():
            assert 0.0 <= value <= 1.0
        for value in result.channel_utilization.values():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= result.host_utilization <= 1.0

    def test_stream_bytes_positive(self, result):
        assert result.total_stream_bytes > 0

    def test_dispatch_count(self, result):
        # Per thread-layer: 5 DF1 + DF2 (1 segment each) + DF3 (2 accel
        # segments) = 8 accel dispatches; 16 threads x 4 layers.
        assert result.total_dispatches == 16 * 4 * 8

    def test_deterministic(self):
        first = Orchestrator(best_perf()).run(CONFIG, batch=8, seq_len=64)
        second = Orchestrator(best_perf()).run(CONFIG, batch=8, seq_len=64)
        assert first.makespan_seconds == second.makespan_seconds

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator(best_perf()).run(CONFIG, batch=0, seq_len=64)


class TestThreadScaling:
    def test_more_threads_helps_up_to_saturation(self):
        orchestrator = Orchestrator(best_perf())
        t1 = orchestrator.run(CONFIG, batch=32, seq_len=128, threads=1)
        t8 = orchestrator.run(CONFIG, batch=32, seq_len=128, threads=8)
        assert t8.throughput > 2.0 * t1.throughput

    def test_threads_clamped_to_batch(self):
        result = Orchestrator(best_perf()).run(CONFIG, batch=4,
                                               seq_len=64, threads=32)
        assert result.threads == 4

    def test_contention_grows_with_threads(self):
        orchestrator = Orchestrator(best_perf())
        low = orchestrator.run(CONFIG, batch=32, seq_len=64, threads=4)
        high = orchestrator.run(CONFIG, batch=32, seq_len=64, threads=32)
        assert high.contention_seconds > low.contention_seconds


class TestResourceModel:
    def test_bandwidth_bound_at_tiny_link(self):
        from repro.arch import custom_link
        starved = best_perf().with_link(custom_link(1.0))
        result = Orchestrator(starved).run(CONFIG, batch=8, seq_len=128)
        assert not result.compute_bound

    def test_infinite_bandwidth_faster(self):
        base = Orchestrator(best_perf()).run(CONFIG, batch=16, seq_len=128)
        fast = Orchestrator(best_perf().with_link(infinite_link())).run(
            CONFIG, batch=16, seq_len=128)
        assert fast.makespan_seconds <= base.makespan_seconds

    def test_bigger_link_never_slower(self):
        slow = Orchestrator(best_perf().with_link(nvlink(2, 0.8))).run(
            CONFIG, batch=16, seq_len=128)
        fast = Orchestrator(best_perf().with_link(nvlink(3, 0.9))).run(
            CONFIG, batch=16, seq_len=128)
        assert fast.makespan_seconds <= slow.makespan_seconds * 1.001

    def test_pooled_config_uses_all_arrays(self):
        result = Orchestrator(homogeneous()).run(CONFIG, batch=16,
                                                 seq_len=128)
        # In pooled mode every array executes every kind: the nominally
        # G- and E-typed arrays carry substantial load too (a strictly
        # typed schedule would put ~70% of the work on the M group).
        values = result.array_utilization
        assert min(values.values()) > 0.15
        assert max(values.values()) / min(values.values()) < 3.0

    def test_task_log_records_everything(self):
        result = Orchestrator(best_perf()).run(
            CONFIG, batch=4, seq_len=64, record_tasks=True)
        # 4 threads x (1 embeddings + 4 layers x 9 nodes).
        assert len(result.task_log) == 4 * (1 + 4 * 9)
        for record in result.task_log:
            assert record.end >= record.start >= record.ready - 1e-12

    def test_task_log_absent_by_default(self, result):
        assert result.task_log is None

    def test_host_tasks_share_pool(self):
        slow_host = HostModel(slots=1, elementwise_throughput=1e8,
                              flops_throughput=1e8)
        fast_host = HostModel(slots=8, elementwise_throughput=1e11,
                              flops_throughput=1e11)
        slow = Orchestrator(best_perf(), host=slow_host).run(
            CONFIG, batch=8, seq_len=128)
        fast = Orchestrator(best_perf(), host=fast_host).run(
            CONFIG, batch=8, seq_len=128)
        assert slow.makespan_seconds > fast.makespan_seconds

    def test_bottleneck_label_valid(self, result):
        assert result.bottleneck.split(":")[0] in ("array", "link", "host")

    def test_kind_attribution_covers_all_kinds(self, result):
        assert set(result.kind_compute_seconds) == {
            "dataflow1", "dataflow2", "dataflow3"}
        assert all(value > 0
                   for value in result.kind_compute_seconds.values())

    def test_kind_attribution_independent_of_threads(self):
        # Compute demand per kind is workload-determined, not schedule-
        # determined.
        a = Orchestrator(best_perf()).run(CONFIG, batch=8, seq_len=64,
                                          threads=2)
        b = Orchestrator(best_perf()).run(CONFIG, batch=8, seq_len=64,
                                          threads=8)
        for kind in a.kind_compute_seconds:
            assert a.kind_compute_seconds[kind] == pytest.approx(
                b.kind_compute_seconds[kind], rel=0.05)


class TestSchedulingPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator(best_perf(), policy="random")

    @pytest.mark.parametrize("policy", Orchestrator.POLICIES)
    def test_all_policies_complete(self, policy):
        result = Orchestrator(best_perf(), policy=policy).run(
            CONFIG, batch=16, seq_len=128)
        assert result.throughput > 0

    def test_policies_within_factor_of_each_other(self):
        throughputs = {}
        for policy in Orchestrator.POLICIES:
            result = Orchestrator(best_perf(), policy=policy).run(
                CONFIG, batch=32, seq_len=128)
            throughputs[policy] = result.throughput
        best = max(throughputs.values())
        worst = min(throughputs.values())
        assert best / worst < 1.5

    def test_total_work_policy_invariant(self):
        results = [Orchestrator(best_perf(), policy=policy).run(
            CONFIG, batch=8, seq_len=64)
            for policy in Orchestrator.POLICIES]
        bytes_set = {result.total_stream_bytes for result in results}
        assert len(bytes_set) == 1
