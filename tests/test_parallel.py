"""Tests for the parallel sweep engine and shape-keyed memoization."""

import dataclasses
import re

import pytest

from repro.arch.config import best_perf, most_efficient
from repro.arch.interconnect import make_partition, nvlink
from repro.arch.lut import make_exp_lut, make_gelu_lut
from repro.dse.explorer import DesignSpaceExplorer
from repro.model.config import protein_bert_tiny
from repro.parallel import (
    ShapeCache,
    SweepExecutor,
    cache_stats,
    cached_build_graph,
    cached_schedule,
    clear_caches,
    configure,
    content_hash,
    schedule_cache,
    schedule_key,
    trace_cache,
    trace_key,
)
from repro.proteins.workloads import uniprot_like_workload
from repro.sched.host import HostModel
from repro.sched.orchestrator import Orchestrator
from repro.system.serving import CampaignSimulator
from repro.telemetry import MetricsRegistry, Tracer

FAST_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                                intermediate_size=512, max_position=2048)


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Isolate every test from cache state left by its neighbours."""
    clear_caches()
    configure(enabled=True, disk_dir=None)
    yield
    clear_caches()
    configure(enabled=True, disk_dir=None)


def _double(value):
    return value * 2


def _raise(value):
    raise RuntimeError(f"boom {value}")


class TestKeys:
    def test_trace_key_deterministic(self):
        a = trace_key(FAST_CONFIG, 8, 128)
        b = trace_key(FAST_CONFIG, 8, 128)
        assert a == b
        assert re.fullmatch(r"[0-9a-f]{32}", a)

    def test_trace_key_sensitive_to_workload_shape(self):
        base = trace_key(FAST_CONFIG, 8, 128)
        assert trace_key(FAST_CONFIG, 8, 256) != base
        assert trace_key(FAST_CONFIG, 4, 128) != base
        assert trace_key(FAST_CONFIG, 8, 128, with_mask=True) != base
        wider = protein_bert_tiny(num_layers=2, hidden_size=256,
                                  num_heads=4, intermediate_size=512,
                                  max_position=2048)
        assert trace_key(wider, 8, 128) != base

    def test_schedule_key_sensitive_to_hardware(self):
        trace = trace_key(FAST_CONFIG, 8, 128)
        host = HostModel()
        base = schedule_key(trace, best_perf(), host)
        assert schedule_key(trace, most_efficient(), host) != base
        assert schedule_key(trace, best_perf().with_threads(4),
                            host) != base
        assert schedule_key(trace, best_perf().with_link(nvlink(3, 0.9)),
                            host) != base
        repartitioned = dataclasses.replace(
            best_perf(), partition=make_partition(3, 2, 1))
        assert schedule_key(trace, repartitioned, host) != base

    def test_schedule_key_sensitive_to_host_and_knobs(self):
        trace = trace_key(FAST_CONFIG, 8, 128)
        hardware = best_perf()
        base = schedule_key(trace, hardware, HostModel())
        assert schedule_key(trace, hardware, HostModel(slots=4)) != base
        assert schedule_key(trace, hardware, HostModel(),
                            threads=8) != base
        assert schedule_key(trace, hardware, HostModel(),
                            policy="round_robin") != base

    def test_content_hash_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            content_hash(object())


class TestShapeCache:
    def test_put_get_and_stats(self):
        cache = ShapeCache("t", capacity=4)
        assert cache.get("k") is None
        cache.put("k", 41)
        assert cache.get("k") == 41
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)

    def test_lru_eviction_order(self):
        cache = ShapeCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")           # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_disabled_cache_is_passthrough(self):
        cache = ShapeCache("t", enabled=False)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_disk_layer_round_trip(self, tmp_path):
        first = ShapeCache("sched", disk_dir=tmp_path)
        first.put("deadbeef", {"makespan": 1.5})
        assert (tmp_path / "sched" / "deadbeef.pkl").is_file()
        fresh = ShapeCache("sched", disk_dir=tmp_path)
        assert fresh.get("deadbeef") == {"makespan": 1.5}
        assert fresh.stats.disk_hits == 1

    def test_disk_clear(self, tmp_path):
        cache = ShapeCache("sched", disk_dir=tmp_path)
        cache.put("k", 1)
        cache.clear(disk=True)
        assert cache.get("k") is None
        assert not list((tmp_path / "sched").glob("*.pkl"))

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "sched").mkdir()
        (tmp_path / "sched" / "bad.pkl").write_bytes(b"not a pickle")
        cache = ShapeCache("sched", disk_dir=tmp_path)
        assert cache.get("bad") is None
        assert not (tmp_path / "sched" / "bad.pkl").exists()


class TestMemo:
    def test_trace_cached_once(self):
        first = cached_build_graph(FAST_CONFIG, batch=4, seq_len=64)
        second = cached_build_graph(FAST_CONFIG, batch=4, seq_len=64)
        assert first is second
        stats = trace_cache().stats
        assert stats.misses == 1 and stats.hits == 1

    def test_trace_shape_change_misses(self):
        cached_build_graph(FAST_CONFIG, batch=4, seq_len=64)
        cached_build_graph(FAST_CONFIG, batch=4, seq_len=128)
        assert trace_cache().stats.misses == 2

    def test_cached_schedule_matches_orchestrator(self):
        hardware = best_perf()
        direct = Orchestrator(hardware).run(FAST_CONFIG, batch=4,
                                            seq_len=64)
        memoized = cached_schedule(hardware, FAST_CONFIG, batch=4,
                                   seq_len=64)
        assert memoized == direct
        again = cached_schedule(hardware, FAST_CONFIG, batch=4,
                                seq_len=64)
        assert again is memoized

    def test_cached_schedule_disk_layer(self, tmp_path):
        configure(disk_dir=tmp_path)
        cached_schedule(best_perf(), FAST_CONFIG, batch=4, seq_len=64)
        clear_caches()          # drop memory, keep disk
        cached_schedule(best_perf(), FAST_CONFIG, batch=4, seq_len=64)
        assert schedule_cache().stats.disk_hits >= 1


class TestExecutor:
    def test_serial_preserves_order(self):
        executor = SweepExecutor(workers=1)
        assert executor.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert executor.last_mode == "serial"

    def test_parallel_preserves_order(self):
        executor = SweepExecutor(workers=2)
        assert executor.map(_double, list(range(8))) == [
            0, 2, 4, 6, 8, 10, 12, 14]
        assert executor.last_mode in ("process", "serial-fallback")

    def test_single_item_stays_serial(self):
        executor = SweepExecutor(workers=4)
        assert executor.map(_double, [21]) == [42]
        assert executor.last_mode == "serial"

    def test_worker_exception_propagates(self):
        for workers in (1, 2):
            with pytest.raises(RuntimeError, match="boom"):
                SweepExecutor(workers=workers).map(_raise, [1, 2])

    def test_telemetry_spans_and_counters(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        SweepExecutor(workers=1).map(_double, [1, 2, 3], tracer=tracer,
                                     metrics=metrics, label="demo")
        task_spans = tracer.spans_on(pid="demo", category="sweep")
        assert len(task_spans) == 4            # 3 tasks + summary
        assert metrics.get("parallel/demo/tasks").value == 3

    def test_resolve_workers(self, monkeypatch):
        assert SweepExecutor.resolve_workers(3) == 3
        assert SweepExecutor.resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        assert SweepExecutor.resolve_workers(None) == 2
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "junk")
        assert SweepExecutor.resolve_workers(None) == 1
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert SweepExecutor.resolve_workers(None) == 1


class TestSweepParity:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(model_config=FAST_CONFIG, batch=8,
                                   seq_len=128)

    def test_workers_and_cache_bit_identical(self, explorer):
        serial = explorer.sweep(limit=12, workers=1)
        parallel = explorer.sweep(limit=12, workers=2)
        warm = explorer.sweep(limit=12, workers=1)
        assert serial == parallel == warm
        assert serial.points == parallel.points
        assert serial.best_perf == parallel.best_perf
        assert (serial.most_power_efficient
                == parallel.most_power_efficient)
        assert serial.most_area_efficient == parallel.most_area_efficient

    def test_empty_space_still_rejected(self, explorer):
        with pytest.raises(ValueError):
            explorer.sweep(limit=0)

    def test_a100_reference_computed_once(self, explorer):
        calls = []
        original = explorer._a100

        class Counting:
            def throughput(self, *args, **kwargs):
                calls.append(1)
                return original.throughput(*args, **kwargs)

        fresh = DesignSpaceExplorer(model_config=FAST_CONFIG, batch=8,
                                    seq_len=128)
        fresh._a100 = Counting()
        first = fresh.a100_runtime()
        second = fresh.a100_runtime()
        assert first == second
        assert len(calls) == 1

    def test_standalone_evaluate_hits_schedule_cache(self, explorer):
        config = best_perf()
        explorer.evaluate(config)
        before = schedule_cache().stats.hits
        point = explorer.evaluate(config)
        assert schedule_cache().stats.hits == before + 1
        assert point.runtime_seconds > 0


class TestLutSharing:
    def test_factories_return_shared_instance(self):
        assert make_gelu_lut() is make_gelu_lut()
        assert make_exp_lut() is make_exp_lut()

    def test_systolic_arrays_share_tables(self):
        from repro.arch.systolic import SystolicArray
        from repro.dataflow.patterns import ArrayType

        first = SystolicArray(16, ArrayType.G)
        second = SystolicArray(32, ArrayType.G)
        assert first._gelu is second._gelu

    def test_tables_are_immutable(self):
        lut = make_gelu_lut()
        table = next(iter(lut._tables.values()))
        with pytest.raises(ValueError):
            table[0] = 1.0


class TestServingMemo:
    def test_repeat_campaign_identical_and_cached(self):
        simulator = CampaignSimulator(model_config=FAST_CONFIG,
                                      max_batch=8)
        workload = uniprot_like_workload(count=24, seed=3)
        first = simulator.run_on_prose(workload)
        hits_before = schedule_cache().stats.hits
        second = simulator.run_on_prose(workload)
        assert first == second
        assert schedule_cache().stats.hits > hits_before


class TestExperimentFanOut:
    @staticmethod
    def _strip_timings(report):
        return re.sub(r"\(\d+\.\ds\)", "(Xs)", report)

    def test_runner_parallel_matches_serial(self):
        from repro.experiments.runner import run_all

        serial = run_all(only=["Table 2", "Table 3"], verbose=False,
                         workers=1)
        parallel = run_all(only=["Table 2", "Table 3"], verbose=False,
                           workers=2)
        assert self._strip_timings(serial) == self._strip_timings(parallel)

    def test_fault_campaign_parallel_matches_serial(self):
        from repro.experiments import fault_campaign

        serial = fault_campaign.run(fault_rates=(0.0, 0.1), seed=11,
                                    library_size=16, workers=1)
        parallel = fault_campaign.run(fault_rates=(0.0, 0.1), seed=11,
                                      library_size=16, workers=2)
        assert serial.serving_reports == parallel.serving_reports
        assert serial.failure_scenario == parallel.failure_scenario


class TestCliSweep:
    def test_sweep_subcommand(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--limit", "2", "--workers", "1",
                     "--batch", "4", "--seq-len", "64"]) == 0
        out = capsys.readouterr().out
        assert "evaluated 2 configurations" in out
        assert "cache[schedule]" in out

    def test_sweep_no_cache(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--limit", "2", "--workers", "1",
                     "--batch", "4", "--seq-len", "64",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "evaluated 2 configurations" in out

    def test_global_stats_observable(self):
        cached_build_graph(FAST_CONFIG, batch=2, seq_len=64)
        stats = cache_stats()
        assert stats["trace"].misses >= 1
        metrics = MetricsRegistry()
        from repro.parallel import record_cache_metrics

        record_cache_metrics(metrics, stats)
        assert metrics.get("cache/trace/misses").value >= 1
