"""Tests for the physical model: scaling, synthesis anchors, SRAM, power."""

import pytest

from repro.arch import (
    MATMUL_FREQUENCY,
    SIMD_FREQUENCY,
    best_perf,
    homogeneous,
    table4_configs,
)
from repro.physical import (
    TABLE2_ROWS,
    characteristics,
    input_buffer_bits,
    power_area_table,
    power_report,
    scale_area,
    scale_delay,
    scale_frequency,
    scale_power,
    synthesize_sram,
    system_power_watts,
    table2,
    validate_clock_feasibility,
)
from repro.sched import HOST_POWER_WATTS


class TestScaling:
    def test_identity_scaling(self):
        assert scale_power(100.0, 45, 45).value == pytest.approx(100.0)

    def test_power_improves_toward_7nm(self):
        assert scale_power(100.0, 45, 7).value < 100.0

    def test_area_shrinks_toward_7nm(self):
        assert scale_area(1.0, 45, 7).value < 0.1

    def test_frequency_rises_toward_7nm(self):
        assert scale_frequency(1.0, 45, 7).value > 1.0

    def test_delay_and_frequency_are_inverse(self):
        delay = scale_delay(1.0, 45, 7)
        frequency = scale_frequency(1.0, 45, 7)
        assert delay.value * frequency.value == pytest.approx(1.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            scale_power(1.0, 45, 5)

    def test_scaling_composes(self):
        via_15 = scale_power(scale_power(100.0, 45, 15).value, 15, 7).value
        direct = scale_power(100.0, 45, 7).value
        assert via_15 == pytest.approx(direct)


class TestTable2Anchors:
    @pytest.mark.parametrize("key", sorted(TABLE2_ROWS))
    def test_anchored_rows_verbatim(self, key):
        size, gelu, exp = key
        row = characteristics(size, gelu, exp)
        freq, power, inbuf_power, area, inbuf_area = TABLE2_ROWS[key]
        assert row.frequency_mhz == freq
        assert row.power_mw == power
        assert row.inbuf_power_mw == inbuf_power
        assert row.area_mm2 == area
        assert row.inbuf_area_mm2 == inbuf_area

    def test_percent_columns_match_paper(self):
        row = characteristics(16, False, False)
        assert row.percent_a100_power == pytest.approx(0.067, abs=0.005)
        assert row.percent_a100_area == pytest.approx(0.026, abs=0.005)

    def test_interpolated_point_sane(self):
        # 16x16 with both LUTs is not in Table 2; must interpolate.
        row = characteristics(16, True, True)
        base = characteristics(16, False, False)
        assert row.power_mw > base.power_mw
        assert row.area_mm2 > base.area_mm2
        assert row.frequency_mhz == pytest.approx(858.1)

    def test_unseen_size_interpolated(self):
        row = characteristics(48, False, False)
        assert (characteristics(32, False, False).power_mw
                < row.power_mw
                < characteristics(64, False, False).power_mw)

    def test_table2_has_ten_rows(self):
        assert len(table2()) == 10

    def test_clock_feasibility(self):
        assert validate_clock_feasibility(MATMUL_FREQUENCY, SIMD_FREQUENCY)
        assert not validate_clock_feasibility(2.0e9, SIMD_FREQUENCY)


class TestSram:
    def test_power_grows_with_bits(self):
        small = synthesize_sram(1024, access_hz=1e9)
        large = synthesize_sram(65536, access_hz=1e9)
        assert large.total_power_mw > small.total_power_mw
        assert large.area_mm2 > small.area_mm2

    def test_scaling_applied(self):
        at_45 = synthesize_sram(8192, access_hz=1e9, node_nm=45)
        at_7 = synthesize_sram(8192, access_hz=1e9, node_nm=7)
        assert at_7.area_mm2 < at_45.area_mm2
        assert at_7.total_power_mw < at_45.total_power_mw

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            synthesize_sram(0, access_hz=1e9)

    def test_input_buffer_bits_scale_with_array(self):
        assert input_buffer_bits(64) > input_buffer_bits(16)
        # Streaming part: 2 buffers x 8 deep x n wide x 16 bits.
        assert input_buffer_bits(16, depth=8) \
            == 2 * 8 * 16 * 16 + 16 * 768 * 16


class TestPowerReport:
    def test_homogeneous_matches_table4_exactly(self):
        # 4x the 64x64 both-LUT row: 2662.9 mW each, 2.983 mm² each.
        report = power_report(homogeneous())
        assert report.accelerator_power_w * 1000 \
            == pytest.approx(10651.6, abs=0.5)
        assert report.area_mm2 == pytest.approx(11.93, abs=0.01)

    def test_best_perf_close_to_table4(self):
        report = power_report(best_perf())
        assert report.accelerator_power_w * 1000 \
            == pytest.approx(12994, rel=0.10)
        assert report.area_mm2 == pytest.approx(12.75, rel=0.02)

    def test_host_power_constant(self):
        report = power_report(best_perf())
        assert report.host_power_w == pytest.approx(HOST_POWER_WATTS)
        assert HOST_POWER_WATTS == pytest.approx(
            50.21 * 0.214 + 6.23, abs=1e-6)

    def test_system_power_is_sum(self):
        report = power_report(best_perf())
        assert report.system_power_w == pytest.approx(
            report.accelerator_power_w + report.host_power_w)

    def test_per_group_rows_sum(self):
        report = power_report(best_perf())
        assert sum(power for _, power, _ in report.per_group) \
            == pytest.approx(report.accelerator_power_w)
        assert sum(area for _, _, area in report.per_group) \
            == pytest.approx(report.area_mm2)

    def test_no_input_buffer_cheaper(self):
        import dataclasses
        with_buffer = power_report(best_perf())
        without = power_report(
            dataclasses.replace(best_perf(), use_input_buffer=False))
        assert without.accelerator_power_w < with_buffer.accelerator_power_w

    def test_power_area_table_covers_table4(self):
        table = power_area_table(table4_configs())
        assert set(table) == {"BestPerf", "MostEfficient", "Homogeneous",
                              "BestPerf+", "MostEfficient+",
                              "Homogeneous+"}

    def test_prose_system_power_near_thirty_watts(self):
        # The efficiency headline numbers assume ~30 W system power.
        assert 25 < system_power_watts(best_perf()) < 40
