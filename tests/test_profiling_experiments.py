"""Tests for the profiling module and the per-figure experiment modules."""

import pytest

from repro.experiments import (
    binding_study,
    figure01,
    figure04,
    figure08,
    figure13_14,
    figure16,
    figure18,
    figure19,
    figure20,
    table02,
    table03,
    table04,
)
from repro.model import protein_bert_base
from repro.profiling import (
    CATEGORY_ORDER,
    format_breakdown,
    matmul_share_bounds,
    profile_breakdown,
)

CONFIG = protein_bert_base()
SHORT_LENGTHS = (64, 256, 1024)


class TestFigure3Profiling:
    @pytest.fixture(scope="class")
    def rows(self):
        return profile_breakdown(config=CONFIG, lengths=SHORT_LENGTHS)

    def test_shares_sum_to_one(self, rows):
        for row in rows:
            assert sum(v for _, v in row.shares) == pytest.approx(1.0)

    def test_matmul_share_in_paper_band(self, rows):
        low, high = matmul_share_bounds(rows)
        # Paper: matrix multiplies are 35%-52% of runtime at all lengths.
        assert 0.30 <= low <= high <= 0.60

    def test_unbatched_matmul_share_decreases_with_length(self, rows):
        shares = [row.share("Matrix Multiply") for row in rows]
        assert shares[0] > shares[-1]

    def test_softmax_share_increases_with_length(self, rows):
        shares = [row.share("Softmax") for row in rows]
        assert shares[-1] > shares[0]

    def test_matrix_div_share_increases_with_length(self, rows):
        shares = [row.share("Matrix Div") for row in rows]
        assert shares[-1] > shares[0]

    def test_categories_match_figure3_legend(self, rows):
        assert CATEGORY_ORDER == ("Matrix Multiply", "Batched Mat Mul",
                                  "Softmax", "GELU", "Matrix Add",
                                  "Matrix Div", "Other")

    def test_format_renders_all_rows(self, rows):
        text = format_breakdown(rows)
        assert text.count("\n") == len(rows)


class TestExperimentModules:
    def test_figure01_structure(self):
        result = figure01.run(lengths=(64, 512), prose_batch=16)
        assert set(result.systems) == {"A100", "TPUv2", "TPUv3", "ProSE"}
        # Every system's efficiency decreases with length.
        for system in result.systems:
            assert result.efficiency(system, 64) \
                > result.efficiency(system, 512)
        assert "ProSE" in figure01.format_result(result)

    def test_figure01_prose_wins_at_512(self):
        result = figure01.run(lengths=(512,), prose_batch=32)
        prose = result.efficiency("ProSE", 512)
        for other in ("A100", "TPUv2", "TPUv3"):
            assert prose > 10 * result.efficiency(other, 512)

    def test_figure04_ratio_grows(self):
        result = figure04.run(lengths=(128, 1024), batch=32)
        assert result.ratio(1024) > result.ratio(128)
        assert "ratio" in figure04.format_result(result)

    def test_figure08_knee(self):
        result = figure08.run(thread_counts=(1, 4, 32, 128), batch=128,
                              seq_len=256)
        assert result.speedup_over_single_thread(32) > 8
        # Throughput declines (or flattens) past the knee.
        by_threads = {p.threads: p.throughput for p in result.points}
        assert by_threads[128] < by_threads[32] * 1.1
        assert "best thread count" in figure08.format_result(result)

    def test_figure13_14_reports(self):
        gelu_report, exp_report = figure13_14.run()
        assert gelu_report.table_bytes == 4096
        assert exp_report.table_bytes == 6144
        assert gelu_report.in_window_max_error < 0.05
        assert exp_report.above_window_max_error == 0.0
        assert "GELU" in figure13_14.format_result((gelu_report,
                                                    exp_report))

    def test_figure16_small_sweep(self):
        result = figure16.run(batch=8, seq_len=128, limit=10)
        assert len(result.points) == 10
        assert "BestPerf" in figure16.format_result(result)

    def test_figure18_subset(self):
        from repro.arch import best_perf, homogeneous, nvlink, infinite_link
        result = figure18.run(configs=(best_perf(), homogeneous()),
                              links=(nvlink(2, 0.9), infinite_link()),
                              batch=32, baselines=("A100",))
        # Heterogeneous beats homogeneous at matched links, including
        # infinite bandwidth (the paper's claim).
        for link in (nvlink(2, 0.9).name, "Infinite"):
            assert (result.speedup("BestPerf", link, "A100")
                    > result.speedup("Homogeneous", link, "A100"))
        assert "speedup vs A100" in figure18.format_result(result)

    def test_figure19_subset(self):
        from repro.arch import best_perf, nvlink
        result = figure19.run(configs=(best_perf(),),
                              links=(nvlink(2, 0.9),), batch=32,
                              baselines=("A100", "TPUv3"))
        assert result.gain("BestPerf", nvlink(2, 0.9).name, "TPUv3") \
            > result.gain("BestPerf", nvlink(2, 0.9).name, "A100")

    def test_figure20_saturation(self):
        from repro.arch import best_perf
        result = figure20.run(configs=(best_perf(),),
                              bandwidths_gbps=(90, 270, 630), batch=32)
        curve = result.curve("BestPerf")
        assert curve[-1].throughput >= curve[0].throughput
        assert "saturates" in figure20.format_result(result)

    def test_table02_rows(self):
        rows = table02.run()
        assert len(rows) == 10
        assert "16x16" in table02.format_result(rows)

    def test_table03_counts(self):
        result = table03.run()
        assert result.num_configs == 232
        assert "238" in table03.format_result(result)

    def test_table04_rows(self):
        rows = table04.run()
        assert [r.name for r in rows][:3] == ["BestPerf", "MostEfficient",
                                              "Homogeneous"]
        # Modelled power within 10% of the paper's published numbers for
        # the 16K-PE designs.
        for row in rows[:3]:
            assert row.power_mw == pytest.approx(row.paper_power_mw,
                                                 rel=0.10)
        assert "paper mW" in table04.format_result(rows)

    def test_binding_study_formatting(self):
        from repro.binding import BindingStudyResult
        result = BindingStudyResult(rank_correlation=0.51,
                                    pearson_correlation=0.5,
                                    train_rank_correlation=0.6,
                                    num_train=39, num_test=35)
        text = binding_study.format_result(result)
        assert "0.5161" in text and "39" in text
