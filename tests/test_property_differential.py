"""Property-based differential tests across the three model layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import SimdOpcode
from repro.trace import Op, OpKind, op_from_dict, op_to_dict
from repro.verify import DifferentialHarness

op_kinds = st.sampled_from(list(OpKind))


class TestDifferentialProperties:
    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_matmul_triple_agreement(self, n, k, seed):
        harness = DifferentialHarness(seed=seed)
        result = harness.run_matmul_case(n=n, k=k)
        assert result.passed, result

    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=1, max_value=4),
           st.sampled_from([SimdOpcode.ADD, SimdOpcode.MUL,
                            SimdOpcode.GELU, SimdOpcode.EXP]),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_chained_op_triple_agreement(self, n, k, opcode, seed):
        harness = DifferentialHarness(seed=seed)
        result = harness.run_chain_case(n=n, k=k, opcode=opcode)
        assert result.passed, result


class TestOpSerializationProperties:
    @given(
        st.sampled_from([OpKind.ADD, OpKind.MUL, OpKind.DIV, OpKind.EXP,
                         OpKind.GELU, OpKind.SOFTMAX, OpKind.LAYERNORM]),
        st.lists(st.integers(min_value=1, max_value=4096),
                 min_size=1, max_size=4),
        st.text(alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"),
            whitelist_characters="._"), max_size=30),
        st.integers(min_value=-1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_elementwise_op_roundtrip(self, kind, shape, name, layer):
        op = Op(kind=kind, shape=tuple(shape), name=name, layer=layer)
        assert op_from_dict(op_to_dict(op)) == op

    @given(st.integers(min_value=1, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 4),
           st.integers(min_value=1, max_value=10 ** 4))
    @settings(max_examples=60, deadline=None)
    def test_matmul_op_roundtrip_and_flops(self, m, k, n):
        op = Op(kind=OpKind.MATMUL, shape=(m, k, n))
        restored = op_from_dict(op_to_dict(op))
        assert restored == op
        assert restored.flops == 2 * m * k * n
