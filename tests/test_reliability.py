"""Tests for fault injection, ABFT detection, and degraded-mode recovery."""

import numpy as np
import pytest

from repro.arch.accelerated_model import AcceleratedProteinBert
from repro.core.engine import ProSEEngine
from repro.model import ProteinBert, protein_bert_tiny
from repro.model.tensors import to_bfloat16
from repro.proteins.workloads import Workload, screening_campaign
from repro.reliability import (
    DegradationPolicy,
    FaultModel,
    FaultRates,
    RetryPolicy,
    detect_corrupted_columns,
)
from repro.system import (
    CampaignReport,
    CampaignSimulator,
    ProSESystem,
)

TINY = protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                         intermediate_size=128)
SERVING_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128,
                                   num_heads=4, intermediate_size=512,
                                   max_position=2048)


@pytest.fixture(scope="module")
def tiny_model():
    return ProteinBert(TINY, seed=9)


@pytest.fixture(scope="module")
def token_ids():
    rng = np.random.default_rng(0)
    return rng.integers(5, 25, size=(2, 12))


class TestFaultRates:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRates(tile_bitflip=1.5)
        with pytest.raises(ValueError):
            FaultRates(batch_failure=-0.1)

    def test_rejects_bad_slowdown(self):
        with pytest.raises(ValueError):
            FaultRates(straggler_slowdown=0.5)

    def test_inert_by_default(self):
        assert not FaultModel().active
        assert FaultModel(FaultRates(), seed=3).active is False
        assert FaultModel(targeted_instance_failures=(0,)).active


class TestAbftDetection:
    def test_clean_result_not_flagged(self):
        rng = np.random.default_rng(1)
        a = to_bfloat16(rng.normal(size=(48, 96)).astype(np.float32))
        b = to_bfloat16(rng.normal(size=(96, 48)).astype(np.float32))
        assert not detect_corrupted_columns(a, b, a @ b).any()

    def test_large_flip_detected(self):
        rng = np.random.default_rng(2)
        a = to_bfloat16(rng.normal(size=(16, 8)).astype(np.float32))
        b = to_bfloat16(rng.normal(size=(8, 16)).astype(np.float32))
        result = a @ b
        corrupted = result.copy()
        corrupted[3, 5] += 100.0  # far beyond any rounding bound
        flags = detect_corrupted_columns(a, b, corrupted)
        assert flags[5]
        assert flags.sum() == 1

    def test_nonfinite_always_detected(self):
        rng = np.random.default_rng(3)
        a = to_bfloat16(rng.normal(size=(8, 8)).astype(np.float32))
        b = to_bfloat16(rng.normal(size=(8, 8)).astype(np.float32))
        corrupted = (a @ b).copy()
        corrupted[0, 0] = np.inf
        assert detect_corrupted_columns(a, b, corrupted)[0]


class TestComputeFaultInjection:
    def test_zero_rate_bit_identical(self, tiny_model, token_ids):
        clean = AcceleratedProteinBert(tiny_model, array_size=8)
        wrapped = AcceleratedProteinBert(tiny_model, array_size=8,
                                         fault_model=FaultModel(seed=1))
        assert np.array_equal(clean.forward(token_ids),
                              wrapped.forward(token_ids))

    def test_seeded_injection_reproducible(self, tiny_model, token_ids):
        rates = FaultRates(tile_bitflip=0.02, lut_bitflip=0.02)

        def run():
            accelerated = AcceleratedProteinBert(
                tiny_model, array_size=8,
                fault_model=FaultModel(rates, seed=7))
            out = accelerated.forward(token_ids)
            return out, accelerated.fault_stats

        first, first_stats = run()
        second, second_stats = run()
        assert np.array_equal(first, second)
        assert first_stats == second_stats

    def test_detected_plus_silent_covers_injected(self, tiny_model,
                                                  token_ids):
        fault_model = FaultModel(
            FaultRates(tile_bitflip=0.02, lut_bitflip=0.02), seed=7)
        accelerated = AcceleratedProteinBert(tiny_model, array_size=8,
                                             fault_model=fault_model)
        accelerated.forward(token_ids)
        stats = accelerated.fault_stats
        assert stats.injected > 0
        assert stats.detected + stats.silent == stats.injected
        assert stats.gemm_flips + stats.lut_flips == stats.injected
        # LUT flips are always silent; some GEMM flips must be caught.
        assert stats.detected > 0
        assert 0.0 <= stats.silent_error_rate <= 1.0

    def test_reset_replays_fault_sequence(self, tiny_model, token_ids):
        fault_model = FaultModel(FaultRates(tile_bitflip=0.05), seed=4)
        accelerated = AcceleratedProteinBert(tiny_model, array_size=8,
                                             fault_model=fault_model)
        first = accelerated.forward(token_ids)
        stats = fault_model.stats
        fault_model.reset()
        second = accelerated.forward(token_ids)
        assert np.array_equal(first, second)
        assert fault_model.stats == stats


class TestSystemDegradation:
    def test_zero_rate_bit_identical(self):
        system = ProSESystem(instances=4)
        base = system.simulate(TINY, batch=16, seq_len=64)
        wrapped = system.simulate_with_faults(
            TINY, batch=16, seq_len=64, fault_model=FaultModel(seed=3))
        assert wrapped.makespan_seconds == base.makespan_seconds
        assert wrapped.throughput == base.throughput
        assert wrapped.energy_joules == wrapped.fault_free_energy_joules
        assert wrapped.reliability.availability == 1.0
        assert wrapped.reliability.retries == 0
        assert wrapped.recovery == ()

    def test_instance_failure_resharded_and_reaccounted(self):
        system = ProSESystem(instances=4)
        fault_model = FaultModel(seed=11, targeted_instance_failures=(1,))
        degraded = system.simulate_with_faults(TINY, batch=32, seq_len=64,
                                               fault_model=fault_model)
        reliability = degraded.reliability
        # The full batch completes via resharding across survivors.
        assert degraded.batch == 32
        assert degraded.survivors == 3
        lost = degraded.base.per_instance[1].batch
        assert sum(shard.batch for shard in degraded.recovery) == lost
        assert reliability.availability < 1.0
        assert reliability.retries > 0
        assert reliability.failures == 1
        assert degraded.energy_joules > degraded.fault_free_energy_joules
        assert reliability.wasted_joules > 0.0
        assert (degraded.makespan_seconds
                > degraded.base.makespan_seconds)

    def test_same_seed_identical_reports(self):
        def run():
            fault_model = FaultModel(
                FaultRates(instance_failure=0.4, link_transient=0.01),
                seed=13)
            return ProSESystem(instances=4).simulate_with_faults(
                TINY, batch=16, seq_len=64, fault_model=fault_model)

        first, second = run(), run()
        assert first.reliability == second.reliability
        assert first.makespan_seconds == second.makespan_seconds
        assert first.energy_joules == second.energy_joules

    def test_link_transients_delay_and_retry(self):
        fault_model = FaultModel(FaultRates(link_transient=0.05), seed=2)
        report = ProSESystem(instances=2).simulate_with_faults(
            TINY, batch=16, seq_len=64, fault_model=fault_model)
        assert report.reliability.retries > 0
        assert report.makespan_seconds > report.base.makespan_seconds
        assert report.reliability.availability < 1.0

    def test_total_outage_restarts_and_completes(self):
        fault_model = FaultModel(seed=5,
                                 targeted_instance_failures=(0, 1))
        report = ProSESystem(instances=2).simulate_with_faults(
            TINY, batch=8, seq_len=64, fault_model=fault_model,
            policy=DegradationPolicy(min_survivors=1))
        assert report.reliability.failures == 2
        assert report.reliability.availability < 1.0
        assert report.energy_joules > report.fault_free_energy_joules


class TestServingRetries:
    @pytest.fixture(scope="class")
    def workload(self):
        return screening_campaign(library_size=32, seed=4)

    def test_zero_rate_bit_identical(self, workload):
        clean = CampaignSimulator(model_config=SERVING_CONFIG,
                                  max_batch=8).run_on_prose(workload)
        wrapped = CampaignSimulator(
            model_config=SERVING_CONFIG, max_batch=8,
            fault_model=FaultModel(seed=6)).run_on_prose(workload)
        assert wrapped.total_seconds == clean.total_seconds
        assert wrapped.total_energy_joules == clean.total_energy_joules
        assert wrapped.sequences == clean.sequences
        assert wrapped.reliability is None

    def test_failures_retried_with_backoff(self, workload):
        fault_model = FaultModel(FaultRates(batch_failure=0.5), seed=8)
        report = CampaignSimulator(
            model_config=SERVING_CONFIG, max_batch=8,
            fault_model=fault_model,
            retry_policy=RetryPolicy(
                max_retries=5, backoff_base_seconds=0.0005,
                backoff_cap_seconds=0.01)).run_on_prose(workload)
        reliability = report.reliability
        assert reliability is not None
        assert reliability.retries > 0
        assert reliability.availability < 1.0
        assert reliability.wasted_seconds > 0.0
        assert reliability.wasted_joules > 0.0
        # Every sequence either completed or was dropped.
        assert report.sequences + reliability.dropped == len(workload)

    def test_straggler_killed_at_deadline(self, workload):
        # Slowdown 10x with deadline 2x: stragglers are always killed
        # and rerun rather than awaited.
        fault_model = FaultModel(
            FaultRates(straggler=0.5, straggler_slowdown=10.0), seed=9)
        report = CampaignSimulator(
            model_config=SERVING_CONFIG, max_batch=8,
            fault_model=fault_model,
            retry_policy=RetryPolicy(
                straggler_deadline_multiple=2.0,
                backoff_base_seconds=0.0005,
                backoff_cap_seconds=0.01)).run_on_prose(workload)
        assert report.reliability.stragglers > 0
        assert report.reliability.retries >= report.reliability.stragglers

    def test_same_seed_identical_reports(self, workload):
        def run():
            fault_model = FaultModel(
                FaultRates(batch_failure=0.3, straggler=0.2), seed=10)
            return CampaignSimulator(
                model_config=SERVING_CONFIG, max_batch=8,
                fault_model=fault_model,
                retry_policy=RetryPolicy(
                    backoff_base_seconds=0.0005,
                    backoff_cap_seconds=0.01)).run_on_prose(workload)

        assert run().reliability == run().reliability

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base_seconds=0.1,
                             backoff_multiplier=2.0,
                             backoff_cap_seconds=0.3)
        assert policy.backoff_seconds(0) == pytest.approx(0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.2)
        assert policy.backoff_seconds(2) == pytest.approx(0.3)
        assert policy.backoff_seconds(10) == pytest.approx(0.3)


class TestFaultCampaignExperiment:
    def test_runs_and_formats(self):
        from repro.experiments import fault_campaign

        result = fault_campaign.run(fault_rates=(0.0, 0.2), seed=3,
                                    library_size=16)
        assert len(result.serving_reports) == 2
        assert result.serving_reports[0].availability == 1.0
        assert result.failure_scenario.reliability.availability < 1.0
        text = fault_campaign.format_result(result)
        assert "instance-failure scenario" in text
        assert "fault rate" in text


class TestSatelliteGuards:
    def test_empty_campaign_report_returns_zero(self):
        report = CampaignReport(platform="p", total_seconds=0.0,
                                total_energy_joules=0.0, sequences=0,
                                padded_tokens=0, useful_tokens=0)
        assert report.throughput == 0.0
        assert report.padding_waste == 0.0

    def test_empty_workload_campaign(self):
        empty = Workload(name="empty", items=())
        report = CampaignSimulator(
            model_config=SERVING_CONFIG).run_on_prose(empty)
        assert report.sequences == 0
        assert report.throughput == 0.0
        assert report.padding_waste == 0.0

    def test_engine_rejects_nonsense_arguments(self):
        engine = ProSEEngine(model_config=TINY)
        with pytest.raises(ValueError, match="batch"):
            engine.simulate(batch=0)
        with pytest.raises(ValueError, match="seq_len"):
            engine.simulate(batch=4, seq_len=-1)
        with pytest.raises(ValueError, match="threads"):
            engine.simulate(batch=4, seq_len=64, threads=0)

    def test_orchestrator_rejects_nonsense_arguments(self):
        from repro.arch.config import best_perf
        from repro.sched.orchestrator import Orchestrator

        orchestrator = Orchestrator(best_perf())
        with pytest.raises(ValueError, match="seq_len"):
            orchestrator.run(TINY, batch=4, seq_len=0)
        with pytest.raises(ValueError, match="threads"):
            orchestrator.run(TINY, batch=4, seq_len=64, threads=-2)

    def test_system_rejects_nonsense_seq_len(self):
        with pytest.raises(ValueError, match="seq_len"):
            ProSESystem(instances=2).simulate(TINY, batch=4, seq_len=0)


class TestDeriveTaskSeed:
    def test_pure_function_of_key(self):
        from repro.reliability import derive_task_seed

        assert derive_task_seed(7, 0.05) == derive_task_seed(7, 0.05)
        assert derive_task_seed(7, 0.05) != derive_task_seed(8, 0.05)
        assert derive_task_seed(7, 0.05) != derive_task_seed(7, 0.06)
        assert derive_task_seed(7, "a") != derive_task_seed(7, "b")

    def test_valid_numpy_seed_range(self):
        from repro.reliability import derive_task_seed

        for key in (0.0, 1e-9, "rack_power_loss", (1, 2)):
            seed = derive_task_seed(2022, key)
            assert 0 <= seed < 2 ** 63
            FaultModel(seed=seed)  # accepted by the RNG constructor

    def test_decorrelates_fault_sequences(self):
        from repro.reliability import derive_task_seed

        draws = []
        for rate in (0.1, 0.2):
            model = FaultModel(FaultRates(instance_failure=0.5),
                               seed=derive_task_seed(5, rate))
            draws.append((model.failed_instances(16),
                          model.failure_fraction()))
        assert draws[0] != draws[1]


class TestFaultCampaignWorkerParity:
    def test_bit_identical_across_worker_counts(self):
        from repro.experiments import fault_campaign

        serial = fault_campaign.run(fault_rates=(0.0, 0.1, 0.2), seed=3,
                                    library_size=16, workers=1)
        parallel = fault_campaign.run(fault_rates=(0.0, 0.1, 0.2), seed=3,
                                      library_size=16, workers=4)
        assert serial == parallel

    def test_point_results_independent_of_sweep_composition(self):
        from repro.experiments import fault_campaign

        full = fault_campaign.run(fault_rates=(0.0, 0.1, 0.2), seed=3,
                                  library_size=16)
        alone = fault_campaign.run(fault_rates=(0.2,), seed=3,
                                   library_size=16)
        assert full.serving_reports[2] == alone.serving_reports[0]


class TestPolicyInterplayValidation:
    def test_accepts_sane_defaults(self):
        from repro.reliability import validate_policy_interplay

        validate_policy_interplay(RetryPolicy(), DegradationPolicy(), 1.0)

    def test_rejects_deadline_shorter_than_first_backoff(self):
        from repro.reliability import validate_policy_interplay

        retry = RetryPolicy(backoff_base_seconds=10.0,
                            backoff_cap_seconds=10.0,
                            straggler_deadline_multiple=2.0)
        with pytest.raises(ValueError, match="straggler deadline"):
            validate_policy_interplay(retry, DegradationPolicy(), 1.0)
        # The same knobs are fine at a longer nominal time scale.
        validate_policy_interplay(retry, DegradationPolicy(), 100.0)

    def test_rejects_detection_beyond_deadline(self):
        from repro.reliability import validate_policy_interplay

        with pytest.raises(ValueError, match="detection window"):
            validate_policy_interplay(
                RetryPolicy(straggler_deadline_multiple=2.0),
                DegradationPolicy(detection_fraction=3.0), 1.0)

    def test_rejects_nonpositive_nominal(self):
        from repro.reliability import validate_policy_interplay

        with pytest.raises(ValueError, match="nominal_seconds"):
            validate_policy_interplay(RetryPolicy(), DegradationPolicy(),
                                      0.0)

    def test_serving_layer_rejects_conflicting_knobs(self):
        from repro.proteins.workloads import screening_campaign

        workload = screening_campaign(library_size=8, seed=1)
        simulator = CampaignSimulator(
            model_config=SERVING_CONFIG, max_batch=8,
            fault_model=FaultModel(FaultRates(batch_failure=0.2), seed=1),
            retry_policy=RetryPolicy(backoff_base_seconds=1e6,
                                     backoff_cap_seconds=1e6))
        with pytest.raises(ValueError, match="straggler deadline"):
            simulator.run_on_prose(workload)

    def test_serving_layer_skips_check_when_fault_free(self):
        from repro.proteins.workloads import screening_campaign

        workload = screening_campaign(library_size=8, seed=1)
        simulator = CampaignSimulator(
            model_config=SERVING_CONFIG, max_batch=8,
            retry_policy=RetryPolicy(backoff_base_seconds=1e6,
                                     backoff_cap_seconds=1e6))
        report = simulator.run_on_prose(workload)  # no faults: no check
        assert report.sequences == 8


class TestSimulateWithFaultsEdges:
    def test_all_instances_killed_is_an_outage_rerun(self):
        system = ProSESystem(instances=4)
        fault_model = FaultModel(seed=5,
                                 targeted_instance_failures=(0, 1, 2, 3))
        report = system.simulate_with_faults(TINY, batch=16, seq_len=64,
                                             fault_model=fault_model)
        assert report.reliability.failures == 4
        assert report.survivors == 4  # restarted from scratch
        assert len(report.recovery) == 4
        assert report.makespan_seconds > report.base.makespan_seconds
        assert report.reliability.availability < 1.0
        assert report.energy_joules > report.fault_free_energy_joules

    def test_recovery_on_exact_detection_boundary(self):
        # With a zero-length detection window the re-shard resumes
        # exactly at the survivors' completion boundary: the only waste
        # is the dead instance's in-flight progress, with no idle gap.
        system = ProSESystem(instances=4)
        probe = FaultModel(seed=9, targeted_instance_failures=(1,))
        probe.failed_instances(4)
        fail_fraction = probe.failure_fraction()

        fault_model = FaultModel(seed=9, targeted_instance_failures=(1,))
        report = system.simulate_with_faults(
            TINY, batch=32, seq_len=64, fault_model=fault_model,
            policy=DegradationPolicy(detection_fraction=0.0))
        fail_at = fail_fraction * report.base.per_instance[1].makespan_seconds
        assert report.reliability.wasted_seconds == pytest.approx(fail_at)
        assert sum(shard.batch for shard in report.recovery) == 8

    def test_detection_gap_waste_accounted_per_survivor(self):
        system = ProSESystem(instances=4)
        probe = FaultModel(seed=9, targeted_instance_failures=(1,))
        probe.failed_instances(4)
        fail_fraction = probe.failure_fraction()

        detection_fraction = 2.0
        fault_model = FaultModel(seed=9, targeted_instance_failures=(1,))
        report = system.simulate_with_faults(
            TINY, batch=32, seq_len=64, fault_model=fault_model,
            policy=DegradationPolicy(
                detection_fraction=detection_fraction))
        completion = report.base.per_instance[1].makespan_seconds
        fail_at = fail_fraction * completion
        detect_at = fail_at + detection_fraction * completion
        # Equal shards: every survivor idles from its completion until
        # detection before its recovery shard starts.
        expected = fail_at + 3 * (detect_at - completion)
        assert report.reliability.wasted_seconds == pytest.approx(expected)

    def test_zero_fault_rate_report_parity_with_plain_simulate(self):
        system = ProSESystem(instances=4)
        base = system.simulate(TINY, batch=16, seq_len=64)
        wrapped = system.simulate_with_faults(
            TINY, batch=16, seq_len=64,
            fault_model=FaultModel(FaultRates(), seed=123))
        assert wrapped.base == base
        assert wrapped.recovery == ()
        assert wrapped.survivors == base.instances
        assert wrapped.makespan_seconds == base.makespan_seconds
        assert wrapped.throughput == base.throughput
        assert wrapped.energy_joules == wrapped.fault_free_energy_joules
        assert wrapped.reliability.availability == 1.0
        assert wrapped.reliability.goodput == base.throughput
        assert wrapped.reliability.wasted_seconds == 0.0
        assert wrapped.reliability.wasted_joules == 0.0
