"""Tests for synthetic sequence generation and FASTA I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proteins import (
    BACKGROUND_FREQUENCIES,
    FastaRecord,
    SequenceGenerator,
    STANDARD_AMINO_ACIDS,
    format_fasta,
    is_valid_sequence,
    iter_windows,
    length_histogram,
    parse_fasta,
    read_fasta,
    write_fasta,
)


class TestSequenceGenerator:
    def test_deterministic_given_seed(self):
        assert (SequenceGenerator(seed=3).sequence(50)
                == SequenceGenerator(seed=3).sequence(50))

    def test_different_seeds_differ(self):
        assert (SequenceGenerator(seed=1).sequence(100)
                != SequenceGenerator(seed=2).sequence(100))

    def test_length_respected(self):
        assert len(SequenceGenerator(seed=0).sequence(137)) == 137

    def test_only_standard_amino_acids(self):
        sequence = SequenceGenerator(seed=0).sequence(500)
        assert set(sequence) <= set(STANDARD_AMINO_ACIDS)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            SequenceGenerator(seed=0).sequence(0)

    def test_composition_tracks_background(self):
        sequence = SequenceGenerator(seed=0).sequence(50000)
        leucine_share = sequence.count("L") / len(sequence)
        assert abs(leucine_share - BACKGROUND_FREQUENCIES["L"]) < 0.01

    def test_batch_shape(self):
        batch = SequenceGenerator(seed=0).batch(count=5, length=20)
        assert len(batch) == 5
        assert all(len(s) == 20 for s in batch)


class TestMutate:
    def test_exact_mutation_count(self):
        generator = SequenceGenerator(seed=0)
        base = generator.sequence(100)
        mutant = generator.mutate(base, 7)
        assert sum(a != b for a, b in zip(base, mutant)) == 7

    def test_zero_mutations_is_identity(self):
        generator = SequenceGenerator(seed=0)
        base = generator.sequence(30)
        assert generator.mutate(base, 0) == base

    def test_restricted_positions(self):
        generator = SequenceGenerator(seed=0)
        base = generator.sequence(100)
        allowed = [10, 20, 30, 40]
        mutant = generator.mutate(base, 3, positions=allowed)
        changed = [i for i, (a, b) in enumerate(zip(base, mutant)) if a != b]
        assert set(changed) <= set(allowed)
        assert len(changed) == 3

    def test_too_many_mutations_rejected(self):
        generator = SequenceGenerator(seed=0)
        with pytest.raises(ValueError):
            generator.mutate("MEYQ", 5)

    def test_out_of_range_positions_rejected(self):
        generator = SequenceGenerator(seed=0)
        with pytest.raises(ValueError):
            generator.mutate("MEYQ", 1, positions=[9])

    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_mutant_stays_valid(self, count):
        generator = SequenceGenerator(seed=4)
        base = generator.sequence(40)
        assert is_valid_sequence(generator.mutate(base, count))


class TestFasta:
    SAMPLE = ">seq1 first\nMEYQ\nACDE\n>seq2\nWWWW\n"

    def test_parse_records(self):
        records = parse_fasta(self.SAMPLE)
        assert len(records) == 2
        assert records[0].header == "seq1 first"
        assert records[0].sequence == "MEYQACDE"
        assert records[1].sequence == "WWWW"

    def test_parse_skips_blank_lines(self):
        records = parse_fasta(">a\n\nME\n\nYQ\n")
        assert records[0].sequence == "MEYQ"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(ValueError):
            parse_fasta("MEYQ\n>late\nAC\n")

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            parse_fasta(">bad\nME1Q\n")

    def test_format_wraps_lines(self):
        record = FastaRecord(header="long", sequence="A" * 130)
        text = format_fasta([record], width=60)
        lines = text.strip().split("\n")
        assert lines[0] == ">long"
        assert [len(line) for line in lines[1:]] == [60, 60, 10]

    def test_roundtrip_through_disk(self, tmp_path):
        records = [FastaRecord("a", "MEYQ"), FastaRecord("b", "ACDE")]
        path = tmp_path / "test.fasta"
        write_fasta(records, path)
        assert read_fasta(path) == records

    def test_parse_format_roundtrip(self):
        records = parse_fasta(self.SAMPLE)
        assert parse_fasta(format_fasta(records)) == records


class TestHelpers:
    def test_length_histogram(self):
        records = [FastaRecord("a", "A" * n) for n in (5, 15, 25, 26)]
        histogram = length_histogram(records, bins=[0, 10, 20, 30])
        assert histogram == {(0, 10): 1, (10, 20): 1, (20, 30): 2}

    def test_iter_windows_short_sequence(self):
        assert list(iter_windows("MEYQ", window=10, stride=5)) == ["MEYQ"]

    def test_iter_windows_stride(self):
        windows = list(iter_windows("ABCDEFGH", window=4, stride=2))
        assert windows == ["ABCD", "CDEF", "EFGH"]

    def test_iter_windows_bad_args(self):
        with pytest.raises(ValueError):
            list(iter_windows("MEYQ", window=0, stride=1))
