"""Tests for trace serialization, calibration solver, and intensity."""

import dataclasses

import pytest

from repro.baselines import (
    CalibrationTarget,
    a100_spec,
    calibrate,
    calibration_residual,
    tpu_v3_spec,
)
from repro.dataflow import DataflowKind, build_graph_for
from repro.model import protein_bert_base, protein_bert_tiny
from repro.profiling import (
    dataflow_intensities,
    intensity_report,
    intensity_vs_length,
    machine_balance,
)
from repro.trace import (
    TraceSpec,
    graph_from_json,
    graph_to_json,
    load_graph,
    op_from_dict,
    op_to_dict,
    save_graph,
    trace_from_json,
    trace_to_json,
    trace_model,
)
from repro.trace.ops import OpKind, elementwise_op, matmul_op

TINY = protein_bert_tiny()


class TestTraceSerialization:
    def test_op_roundtrip(self):
        op = matmul_op(128, 768, 64, name="layer.0.q", layer=0)
        assert op_from_dict(op_to_dict(op)) == op

    def test_op_metadata_roundtrip(self):
        op = elementwise_op(OpKind.DIV, (4, 4), name="scale",
                            metadata={"divisor": 8.0})
        restored = op_from_dict(op_to_dict(op))
        assert restored.metadata == (("divisor", 8.0),)

    def test_trace_roundtrip(self):
        ops = trace_model(TraceSpec(TINY, batch=1, seq_len=8))
        restored = trace_from_json(trace_to_json(ops))
        assert restored == ops

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            trace_from_json('{"version": 99, "ops": []}')

    def test_graph_roundtrip(self):
        graph = build_graph_for(TINY, batch=1, seq_len=8)
        restored = graph_from_json(graph_to_json(graph))
        assert len(restored) == len(graph)
        assert restored.count_by_array_type() \
            == graph.count_by_array_type()
        for original, loaded in zip(graph.nodes, restored.nodes):
            assert type(original) is type(loaded)
            assert original.deps == loaded.deps
            assert original.ops == loaded.ops

    def test_graph_disk_roundtrip(self, tmp_path):
        graph = build_graph_for(TINY, batch=1, seq_len=8)
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        assert len(load_graph(path)) == len(graph)

    def test_unknown_node_type_rejected(self):
        with pytest.raises(ValueError):
            graph_from_json('{"version": 1, "nodes": '
                            '[{"type": "alien", "ops": [], "deps": []}]}')


class TestCalibrationSolver:
    def test_reproduces_baked_a100_constants(self):
        # Re-solving from a perturbed start recovers the shipped numbers.
        target = CalibrationTarget(throughput=49.8, matmul_share=0.48)
        start = dataclasses.replace(a100_spec(), matmul_efficiency=0.5,
                                    elementwise_efficiency=0.5)
        solved = calibrate(start, target)
        assert solved.matmul_efficiency \
            == pytest.approx(a100_spec().matmul_efficiency, rel=0.05)
        assert solved.elementwise_efficiency \
            == pytest.approx(a100_spec().elementwise_efficiency, rel=0.05)

    def test_residuals_near_zero_after_calibration(self):
        target = CalibrationTarget(throughput=49.8, matmul_share=0.48)
        throughput_err, share_err = calibration_residual(a100_spec(),
                                                         target)
        assert abs(throughput_err) < 0.02
        assert abs(share_err) < 0.02

    def test_custom_target(self):
        target = CalibrationTarget(throughput=100.0, matmul_share=0.6,
                                   batch=32, seq_len=256)
        solved = calibrate(tpu_v3_spec(), target)
        throughput_err, share_err = calibration_residual(solved, target)
        assert abs(throughput_err) < 0.05
        assert abs(share_err) < 0.05

    def test_target_validation(self):
        with pytest.raises(ValueError):
            CalibrationTarget(throughput=-1.0, matmul_share=0.5)
        with pytest.raises(ValueError):
            CalibrationTarget(throughput=10.0, matmul_share=1.5)


class TestOperationalIntensity:
    def test_dataflow3_is_least_intense(self):
        points = dataflow_intensities(protein_bert_base(), seq_len=512)
        assert points[DataflowKind.DATAFLOW_3].intensity \
            < 0.5 * points[DataflowKind.DATAFLOW_1].intensity
        assert points[DataflowKind.DATAFLOW_3].intensity \
            < 0.5 * points[DataflowKind.DATAFLOW_2].intensity

    def test_dataflow3_is_link_bound_on_best_perf(self):
        points = dataflow_intensities(protein_bert_base(), seq_len=512)
        balance = machine_balance()
        assert points[DataflowKind.DATAFLOW_3].intensity < balance
        assert points[DataflowKind.DATAFLOW_1].intensity > balance

    def test_report_renders(self):
        text = intensity_report()
        assert "machine balance" in text
        assert "link" in text

    def test_intensity_vs_length_monotone_for_df1(self):
        sweeps = intensity_vs_length(protein_bert_base(),
                                     lengths=(128, 1024))
        short = sweeps[0][DataflowKind.DATAFLOW_1].intensity
        long = sweeps[1][DataflowKind.DATAFLOW_1].intensity
        # DF1 intensity is length-independent (weights dominate traffic
        # at short lengths; activations and weights both scale linearly).
        assert long == pytest.approx(short, rel=0.5)
