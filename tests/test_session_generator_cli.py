"""Tests for the InferenceSession, hardware generator, and CLI."""

import numpy as np
import pytest

from repro.arch.generator import (
    crosscheck_against_table2,
    elaborate,
    elaboration_report,
)
from repro.cli import build_parser, main
from repro.core import InferenceSession
from repro.dataflow import ArrayType
from repro.model import ProteinBert, protein_bert_tiny
from repro.proteins import SequenceGenerator


class TestInferenceSession:
    @pytest.fixture(scope="class")
    def session(self):
        model = ProteinBert(protein_bert_tiny(max_position=128), seed=0)
        return InferenceSession(model)

    def test_embed_shapes(self, session):
        sequences = SequenceGenerator(seed=0).batch(3, 24)
        result = session.embed(sequences)
        assert result.embeddings.shape == (3, 64)
        assert result.estimated_latency_seconds > 0
        assert result.estimated_energy_joules > 0
        assert not result.functional

    def test_ragged_lengths_padded(self, session):
        result = session.embed(["MEYQ", "ACDEFGHIKLMNP"])
        assert result.embeddings.shape[0] == 2

    def test_empty_input_rejected(self, session):
        with pytest.raises(ValueError):
            session.embed([])

    def test_functional_matches_reference(self):
        model = ProteinBert(protein_bert_tiny(max_position=128), seed=1)
        reference = InferenceSession(model, functional=False)
        functional = InferenceSession(model, functional=True)
        sequences = SequenceGenerator(seed=2).batch(2, 16)
        a = reference.embed(sequences).embeddings
        b = functional.embed(sequences).embeddings
        assert np.corrcoef(a.ravel(), b.ravel())[0, 1] > 0.999

    def test_small_factory(self):
        session = InferenceSession.small()
        assert session.model.config.hidden_size == 256

    def test_rank_by(self, session):
        order = session.rank_by(["a", "b", "c"], [0.1, 0.9, 0.5])
        assert order == [1, 2, 0]

    def test_rank_by_validates(self, session):
        with pytest.raises(ValueError):
            session.rank_by(["a"], [1.0, 2.0])

    def test_energy_is_latency_times_power(self, session):
        result = session.embed(["MEYQ"])
        assert result.estimated_energy_joules == pytest.approx(
            result.estimated_latency_seconds * 31.1, rel=0.05)


class TestGenerator:
    def test_pe_counts(self):
        inventory = elaborate(16, ArrayType.M)
        assert inventory.macs == 256
        assert inventory.accumulator_bits == 256 * 32
        assert inventory.simd_alus == 16
        assert inventory.lut_bits == 0

    def test_lut_bits_per_alu(self):
        gelu = elaborate(16, ArrayType.G)
        exp = elaborate(16, ArrayType.E)
        assert gelu.lut_bits == 16 * 4096 * 8
        assert exp.lut_bits == 16 * 6144 * 8

    def test_rollup_tracks_table2(self):
        # Structural pre-synthesis estimates land within ~40% of the
        # synthesized anchors across every (size, type) point.
        for (size, letter), (p_ratio, a_ratio) in \
                crosscheck_against_table2().items():
            assert 0.55 < p_ratio < 1.45, (size, letter, p_ratio)
            assert 0.55 < a_ratio < 1.45, (size, letter, a_ratio)

    def test_power_grows_with_size(self):
        assert elaborate(64, ArrayType.M).power_mw() \
            > 10 * elaborate(16, ArrayType.M).power_mw()

    def test_report_renders(self):
        report = elaboration_report(16, ArrayType.E)
        assert "MAC datapaths" in report and "6144" not in report

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            elaborate(0, ArrayType.M)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--batch", "8"])
        assert args.batch == 8

    def test_zoo_command(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "esm-1b" in out

    def test_embed_command(self, capsys):
        assert main(["embed", "MEYQKLVIV"]) == 0
        out = capsys.readouterr().out
        assert "embedded 1 sequences" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--batch", "8", "--seq-len", "64"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_unknown_hardware_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--hardware", "nope"])

    def test_no_args_prints_overview(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "subcommands:" in out
        for name in ("simulate", "trace", "reliability", "zoo"):
            assert name in out

    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_command_emits_valid_json(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main([
            "trace", "--workload", "schedule", "--batch", "2",
            "--seq-len", "64", "--out", str(out_path),
            "--metrics-csv", str(tmp_path / "metrics.csv"),
            "--metrics-jsonl", str(tmp_path / "metrics.jsonl"),
        ]) == 0
        data = json.loads(out_path.read_text())
        counts = validate_chrome_trace(data)
        assert counts["spans"] > 0
        assert (tmp_path / "metrics.csv").exists()
        assert (tmp_path / "metrics.jsonl").exists()
        assert "trace" in capsys.readouterr().out
