"""Tests for streaming buffers, Little's law, and the interconnect model."""

import numpy as np
import pytest

from repro.arch import (
    DEFAULT_DEPTH,
    NVLINK_LANES,
    StreamingBuffer,
    custom_link,
    enumerate_partitions,
    infinite_link,
    littles_law_depth,
    make_partition,
    nvlink,
)
from repro.arch.config import MATMUL_FREQUENCY, best_perf
from repro.dataflow import ArrayType


class TestLittlesLaw:
    def test_paper_provisioning_is_sufficient(self):
        # Every (type, size) point of the shipped design must be covered by
        # the 8-deep buffers at its per-array NVLink 2.0 share.
        config = best_perf()
        for group in config.groups:
            bandwidth = (config.type_bandwidth(group.array_type)
                         / group.count)
            requirement = littles_law_depth(
                per_array_bandwidth=bandwidth,
                array_size=group.size,
                frequency=MATMUL_FREQUENCY)
            assert requirement.sufficient, group.label

    def test_depth_grows_with_latency(self):
        shallow = littles_law_depth(45e9, 1e-6, 16, 1.6e9)
        deep = littles_law_depth(45e9, 1e-4, 16, 1.6e9)
        assert deep.required_depth > shallow.required_depth

    def test_consumption_caps_arrival(self):
        # An over-provisioned link cannot require more occupancy than the
        # array can drain per cycle.
        requirement = littles_law_depth(1e15, 1e-9, 16, 1.6e9)
        assert requirement.arrival_rate <= 1.6e9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            littles_law_depth(0, 1e-6, 16, 1.6e9)


class TestStreamingBuffer:
    def test_fifo_order(self):
        buffer = StreamingBuffer(depth=4, width=2)
        buffer.push(np.array([1.0, 2.0], dtype=np.float32))
        buffer.push(np.array([3.0, 4.0], dtype=np.float32))
        assert np.allclose(buffer.pop(), [1.0, 2.0])
        assert np.allclose(buffer.pop(), [3.0, 4.0])

    def test_full_buffer_stalls(self):
        buffer = StreamingBuffer(depth=2, width=1)
        assert buffer.push(np.array([1.0], dtype=np.float32))
        assert buffer.push(np.array([2.0], dtype=np.float32))
        assert not buffer.push(np.array([3.0], dtype=np.float32))
        assert buffer.stall_count == 1

    def test_default_depth_is_eight(self):
        assert StreamingBuffer().depth == DEFAULT_DEPTH

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StreamingBuffer().pop()

    def test_entries_rounded_to_bf16(self):
        buffer = StreamingBuffer(depth=2, width=1)
        buffer.push(np.array([1.0 + 2.0 ** -12], dtype=np.float32))
        assert buffer.pop()[0] == 1.0

    def test_width_validated(self):
        buffer = StreamingBuffer(depth=2, width=4)
        with pytest.raises(ValueError):
            buffer.push(np.zeros(3, dtype=np.float32))


class TestNvlink:
    def test_nvlink2_at_90_percent(self):
        link = nvlink(2, 0.9)
        assert link.total_bandwidth == pytest.approx(270e9)
        assert link.lanes == NVLINK_LANES

    def test_nvlink3_doubles_nvlink2(self):
        assert nvlink(3, 0.9).total_bandwidth \
            == pytest.approx(2 * nvlink(2, 0.9).total_bandwidth)

    def test_lane_bandwidth_is_45_gbps(self):
        assert nvlink(2, 0.9).lane_bandwidth == pytest.approx(45e9)

    def test_unknown_generation_rejected(self):
        with pytest.raises(ValueError):
            nvlink(4)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            nvlink(2, 1.5)

    def test_infinite_link(self):
        link = infinite_link()
        assert link.total_bandwidth >= 1e17
        assert link.latency == 0.0

    def test_custom_link(self):
        assert custom_link(360).total_bandwidth == pytest.approx(360e9)


class TestLanePartition:
    def test_bandwidth_split(self):
        link = nvlink(2, 0.9)
        partition = make_partition(3, 2, 1)
        assert partition.bandwidth(ArrayType.M, link) \
            == pytest.approx(135e9)
        assert partition.bandwidth(ArrayType.E, link) \
            == pytest.approx(45e9)

    def test_every_type_needs_a_lane(self):
        with pytest.raises(ValueError):
            make_partition(4, 2, 0)

    def test_enumerate_partitions_cover_six_lanes(self):
        partitions = enumerate_partitions(6)
        assert all(p.total_lanes == 6 for p in partitions)
        # Compositions of 6 into 3 positive parts: C(5,2) = 10.
        assert len(partitions) == 10

    def test_lanes_lookup(self):
        partition = make_partition(2, 2, 2)
        for array_type in ArrayType:
            assert partition.lanes(array_type) == 2
