"""Tests for the multi-instance system, verify harness, zoo, and memory."""

import pytest

from repro.model import MODEL_ZOO, get_model_config, protein_bert_tiny, zoo_names
from repro.model.zoo import describe
from repro.profiling import (
    footprint_sweep,
    format_sweep,
    model_footprint,
    prose_device_bytes,
)
from repro.system import ProSESystem, format_scaling, scaling_study
from repro.verify import DifferentialHarness, campaign_report

FAST_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                                intermediate_size=512, max_position=256)


class TestModelZoo:
    def test_known_models(self):
        assert {"tape-bert", "esm-1b"} <= set(MODEL_ZOO)

    def test_tape_is_bert_base(self):
        config = get_model_config("tape-bert")
        assert (config.num_layers, config.hidden_size) == (12, 768)

    def test_esm1b_scale(self):
        config = get_model_config("esm-1b")
        assert config.num_layers == 33
        assert 600e6 < config.parameter_count < 700e6

    def test_zoo_names_sorted_by_size(self):
        names = zoo_names()
        sizes = [MODEL_ZOO[name].parameter_count for name in names]
        assert sizes == sorted(sizes)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model_config("alphafold")

    def test_describe(self):
        assert "33L" in describe("esm-1b")


class TestMemoryModel:
    def test_quadratic_term_scales_quadratically(self):
        small = model_footprint(get_model_config("tape-bert"), 256)
        large = model_footprint(get_model_config("tape-bert"), 1024)
        assert large.quadratic_activation_bytes \
            == 16 * small.quadratic_activation_bytes
        assert large.linear_activation_bytes \
            == 4 * small.linear_activation_bytes

    def test_max_batch_decreases_with_length(self):
        config = get_model_config("tape-bert")
        batches = [model_footprint(config, seq).max_batch()
                   for seq in (128, 512, 2048)]
        assert batches[0] > batches[1] > batches[2]

    def test_max_batch_order_of_magnitude_matches_paper(self):
        # Paper's A100 batch table: 512 at seq 512, 64 at seq 2048.
        config = get_model_config("tape-bert")
        assert 256 <= model_footprint(config, 512).max_batch() <= 8192
        assert 32 <= model_footprint(config, 2048).max_batch() <= 1024

    def test_out_of_range_length_rejected(self):
        with pytest.raises(ValueError):
            model_footprint(get_model_config("tape-bert"), 0)

    def test_prose_storage_is_tiny_and_fixed(self):
        # The streaming design's whole point: ~1 MiB, length-independent.
        storage = prose_device_bytes()
        assert storage < 4 * 2 ** 20

    def test_format_sweep_renders(self):
        text = format_sweep(footprint_sweep(lengths=(128, 512)))
        assert "ProSE on-accelerator storage" in text


class TestDifferentialHarness:
    def test_campaign_all_pass(self):
        harness = DifferentialHarness(seed=3, max_size=5)
        results = harness.run_campaign(cases=12)
        assert all(result.passed for result in results), \
            campaign_report(results)

    def test_matmul_case_fields(self):
        harness = DifferentialHarness(seed=1)
        result = harness.run_matmul_case(n=4, k=6)
        assert result.exact_match
        assert result.reference_error < 0.05 * result.reference_scale

    def test_chain_cases_each_opcode(self):
        from repro.arch import SimdOpcode
        harness = DifferentialHarness(seed=2)
        for opcode in (SimdOpcode.ADD, SimdOpcode.MUL, SimdOpcode.GELU,
                       SimdOpcode.EXP):
            result = harness.run_chain_case(n=4, k=5, opcode=opcode)
            assert result.passed, result

    def test_report_mentions_counts(self):
        harness = DifferentialHarness(seed=4)
        results = harness.run_campaign(cases=4)
        assert "4 cases" in campaign_report(results)


class TestProSESystem:
    def test_four_instance_default(self):
        assert ProSESystem().instances == 4

    def test_invalid_instances_rejected(self):
        with pytest.raises(ValueError):
            ProSESystem(instances=0)

    def test_batch_must_cover_instances(self):
        with pytest.raises(ValueError):
            ProSESystem(instances=4).simulate(FAST_CONFIG, batch=2,
                                              seq_len=64)

    def test_throughput_scales_with_instances(self):
        one = ProSESystem(instances=1).simulate(FAST_CONFIG, batch=16,
                                                seq_len=64)
        four = ProSESystem(instances=4).simulate(FAST_CONFIG, batch=64,
                                                 seq_len=64)
        assert 3.0 <= four.throughput / one.throughput <= 5.0

    def test_host_power_counted_once(self):
        from repro.sched import HOST_POWER_WATTS
        from repro.physical import accelerator_power_watts
        from repro.arch import best_perf
        report = ProSESystem(instances=4).simulate(FAST_CONFIG, batch=16,
                                                   seq_len=64)
        expected = 4 * accelerator_power_watts(best_perf()) \
            + HOST_POWER_WATTS
        assert report.system_power_watts == pytest.approx(expected)

    def test_efficiency_improves_with_sharing(self):
        # The shared host amortizes: 4 instances beat 4x one-instance
        # power but not 4x throughput — efficiency per Watt rises.
        one = ProSESystem(instances=1).simulate(FAST_CONFIG, batch=16,
                                                seq_len=64)
        four = ProSESystem(instances=4).simulate(FAST_CONFIG, batch=64,
                                                 seq_len=64)
        assert four.efficiency > one.efficiency

    def test_scaling_study_format(self):
        reports = scaling_study(config=FAST_CONFIG,
                                instance_counts=(1, 2),
                                batch_per_instance=8, seq_len=64)
        text = format_scaling(reports)
        assert "instances" in text and "scaling" in text
