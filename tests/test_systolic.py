"""Tests for the systolic arrays: PE, cycle-accurate grid, functional model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    CycleAccurateArray,
    ExecutionStats,
    ProcessingElement,
    SimdOpcode,
    SimdStep,
    SystolicArray,
)
from repro.dataflow import ArrayType
from repro.model import to_bfloat16


class TestProcessingElement:
    def test_mac_accumulates(self):
        pe = ProcessingElement()
        pe.load(2.0, 3.0)
        pe.mac()
        pe.load(1.0, 4.0)
        pe.mac()
        assert pe.accumulator == pytest.approx(10.0)

    def test_operands_rounded_to_bf16(self):
        pe = ProcessingElement()
        pe.load(1.0 + 2.0 ** -12, 1.0)
        assert pe.reg_a == 1.0

    def test_clear(self):
        pe = ProcessingElement()
        pe.load(2.0, 2.0)
        pe.mac()
        pe.clear()
        assert pe.accumulator == 0.0

    def test_output_is_bf16_view(self):
        pe = ProcessingElement()
        pe.accumulator = 1.0 + 2.0 ** -12
        assert pe.output == 1.0

    def test_mac_count_tracks(self):
        pe = ProcessingElement()
        for _ in range(5):
            pe.mac()
        assert pe.mac_count == 5


class TestCycleAccurateMatmul:
    def test_identity(self):
        array = CycleAccurateArray(3)
        a = np.eye(3, dtype=np.float32)
        b = np.arange(9, dtype=np.float32).reshape(3, 3)
        assert np.allclose(array.matmul(a, b), b)

    def test_against_numpy_small(self):
        rng = np.random.default_rng(1)
        array = CycleAccurateArray(4)
        a = to_bfloat16(rng.normal(size=(4, 7)).astype(np.float32))
        b = to_bfloat16(rng.normal(size=(7, 4)).astype(np.float32))
        assert np.allclose(array.matmul(a, b), a @ b, rtol=1e-5, atol=1e-5)

    def test_cycle_count_is_k_plus_2n(self):
        array = CycleAccurateArray(4)
        array.matmul(np.zeros((4, 6), dtype=np.float32),
                     np.zeros((6, 4), dtype=np.float32))
        assert array.cycles_elapsed == 6 + 2 * (4 - 1) + 1

    def test_shape_validation(self):
        array = CycleAccurateArray(3)
        with pytest.raises(ValueError):
            array.matmul(np.zeros((2, 4)), np.zeros((4, 3)))

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_functional_model(self, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, k)).astype(np.float32)
        b = rng.normal(size=(k, n)).astype(np.float32)
        grid = CycleAccurateArray(n).matmul(a, b)
        functional = SystolicArray(n, ArrayType.M).matmul(a, b)
        assert np.allclose(grid, functional, rtol=1e-5, atol=1e-6)


class TestCycleAccurateSimd:
    def test_left_rotation_returns_in_place(self):
        array = CycleAccurateArray(4)
        values = np.arange(16, dtype=np.float32).reshape(4, 4)
        array.load_accumulators(values)
        result = array.simd_rotate(lambda column, j: column)
        assert np.array_equal(result, values)

    def test_columnwise_vector_add(self):
        array = CycleAccurateArray(3)
        values = np.ones((3, 3), dtype=np.float32)
        operand = np.array([[1., 2., 3.]] * 3, dtype=np.float32)
        array.load_accumulators(values)
        result = array.simd_rotate(
            lambda column, j: column + operand[:, j])
        assert np.allclose(result, values + operand)

    def test_simd_cycles_at_half_clock(self):
        array = CycleAccurateArray(4)
        array.load_accumulators(np.zeros((4, 4), dtype=np.float32))
        array.simd_rotate(lambda column, j: column, frequency_ratio=2)
        assert array.cycles_elapsed == 8   # n rotations x 2 matmul cycles

    def test_alu_result_rounded_to_bf16(self):
        array = CycleAccurateArray(2)
        array.load_accumulators(np.zeros((2, 2), dtype=np.float32))
        fine = 1.0 + 2.0 ** -12
        result = array.simd_rotate(lambda column, j: column + fine)
        assert np.allclose(result, 1.0)

    def test_wrong_alu_width_rejected(self):
        array = CycleAccurateArray(3)
        array.load_accumulators(np.zeros((3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            array.simd_rotate(lambda column, j: np.zeros(2))


class TestFunctionalSystolicArray:
    def test_matmul_tiles_counted(self):
        array = SystolicArray(4, ArrayType.M)
        stats = ExecutionStats()
        array.matmul(np.zeros((8, 6), dtype=np.float32),
                     np.zeros((6, 12), dtype=np.float32), stats)
        assert stats.tiles == 2 * 3
        assert stats.matmul_cycles == 6 * (6 + 8)
        assert stats.mac_operations == 8 * 6 * 12

    def test_matmul_ragged_tiles(self):
        array = SystolicArray(4, ArrayType.M)
        stats = ExecutionStats()
        array.matmul(np.zeros((5, 3), dtype=np.float32),
                     np.zeros((3, 9), dtype=np.float32), stats)
        assert stats.tiles == 2 * 3

    def test_simd_add_broadcast_bias(self):
        array = SystolicArray(4, ArrayType.M)
        resident = np.zeros((4, 4), dtype=np.float32)
        bias = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        out = array.simd(resident, SimdStep(SimdOpcode.ADD, bias,
                                            broadcast_rows=True))
        assert np.allclose(out, np.tile(bias, (4, 1)))

    def test_simd_mul_scalar(self):
        array = SystolicArray(4, ArrayType.M)
        resident = np.full((4, 4), 3.0, dtype=np.float32)
        out = array.simd(resident, SimdStep(SimdOpcode.MUL, 0.5))
        assert np.allclose(out, 1.5)

    def test_gelu_requires_g_type(self):
        with pytest.raises(ValueError):
            SystolicArray(4, ArrayType.M).simd(
                np.zeros((4, 4), dtype=np.float32),
                SimdStep(SimdOpcode.GELU))

    def test_exp_requires_e_type(self):
        with pytest.raises(ValueError):
            SystolicArray(4, ArrayType.G).simd(
                np.zeros((4, 4), dtype=np.float32),
                SimdStep(SimdOpcode.EXP))

    def test_g_type_gelu_matches_lut(self):
        array = SystolicArray(4, ArrayType.G)
        resident = np.linspace(-3, 3, 16).reshape(4, 4).astype(np.float32)
        out = array.simd(resident, SimdStep(SimdOpcode.GELU))
        from repro.arch import make_gelu_lut
        assert np.allclose(out, make_gelu_lut().lookup(resident))

    def test_add_requires_operand(self):
        array = SystolicArray(4, ArrayType.M)
        with pytest.raises(ValueError):
            array.simd(np.zeros((4, 4), dtype=np.float32),
                       SimdStep(SimdOpcode.ADD))

    def test_execute_chain_dataflow1(self):
        # MatMul -> bias add -> residual add with bf16 semantics.
        rng = np.random.default_rng(0)
        array = SystolicArray(8, ArrayType.M)
        a = rng.normal(size=(8, 16)).astype(np.float32)
        w = rng.normal(size=(16, 8)).astype(np.float32)
        bias = rng.normal(size=8).astype(np.float32)
        residual = rng.normal(size=(8, 8)).astype(np.float32)
        out = array.execute_chain(
            a, w, (SimdStep(SimdOpcode.ADD, bias, broadcast_rows=True),
                   SimdStep(SimdOpcode.ADD, residual)))
        reference = to_bfloat16(a) @ to_bfloat16(w) + bias + residual
        assert np.abs(out - reference).max() < 0.1

    def test_execute_chain_counts_simd_cycles(self):
        array = SystolicArray(4, ArrayType.M)
        stats = ExecutionStats()
        array.execute_chain(
            np.zeros((8, 4), dtype=np.float32),
            np.zeros((4, 8), dtype=np.float32),
            (SimdStep(SimdOpcode.MUL, 2.0),), stats)
        # 2x2 tiles of the 8x8 output, one rotation (4 cycles) each.
        assert stats.simd_cycles == 4 * 4

    def test_simd_alu_count_equals_rows(self):
        assert SystolicArray(16, ArrayType.E).num_simd_alus == 16

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SystolicArray(0, ArrayType.M)
