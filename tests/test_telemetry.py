"""Tests for the telemetry subsystem: spans, metrics, export, rendering.

Covers the observability invariants the rest of the stack relies on:
span nesting/ordering, bit-identity of every report when the tracer is
disabled, Chrome-trace schema validity of exported JSON, histogram
percentile math at bucket edges, and registry merge semantics.
"""

import json

import pytest

from repro.arch import best_perf
from repro.arch.accelerated_model import AcceleratedProteinBert
from repro.dataflow import ArrayType
from repro.model import ProteinBert, protein_bert_tiny
from repro.proteins.workloads import uniprot_like_workload
from repro.reliability import FaultModel, FaultRates, RetryPolicy
from repro.sched import Orchestrator
from repro.sched.orchestrator import ScheduleResult
from repro.system import CampaignSimulator, ProSESystem
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    Tracer,
    render_tracks,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_jsonl,
)

CONFIG = protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                           intermediate_size=128)


# -- tracer basics -------------------------------------------------------

class TestTracer:
    def test_add_span_records_fields(self):
        tracer = Tracer()
        span = tracer.add_span("work", 1.0, 2.5, pid="p", tid="t",
                               category="exec", bytes=42)
        assert span.duration == pytest.approx(1.5)
        assert span.args == {"bytes": 42}
        assert tracer.spans_on(pid="p", tid="t") == [span]

    def test_add_span_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends .* before it"):
            Tracer().add_span("bad", 2.0, 1.0)

    def test_add_span_rejects_nan_timestamps(self):
        # NaN would pass the end < start check (NaN compares false) and
        # silently poison every downstream export and analysis.
        for start, end in ((float("nan"), 1.0), (0.0, float("nan")),
                           (float("nan"), float("nan"))):
            with pytest.raises(ValueError, match="NaN"):
                Tracer().add_span("bad", start, end)

    def test_instant_rejects_nan_timestamp(self):
        with pytest.raises(ValueError, match="NaN"):
            Tracer().instant("bad", float("nan"))

    def test_finished_spans_order_is_recording_independent(self):
        def keys(tracer):
            return [(s.name, s.start) for s in tracer.finished_spans()]

        forward, backward = Tracer(), Tracer()
        spans = [("a", 1.0, 2.0, "p1", "x"), ("b", 0.0, 1.0, "p0", "y"),
                 ("c", 1.0, 2.0, "p0", "y"), ("d", 0.5, 3.0, "p1", "x")]
        for name, start, end, pid, tid in spans:
            forward.add_span(name, start, end, pid=pid, tid=tid)
        for name, start, end, pid, tid in reversed(spans):
            backward.add_span(name, start, end, pid=pid, tid=tid)
        assert keys(forward) == keys(backward)
        assert keys(forward) == [("b", 0.0), ("d", 0.5), ("c", 1.0),
                                 ("a", 1.0)]

    def test_wall_clock_spans_nest_via_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_wall_clock_spans_close_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished_spans()
        assert span.end is not None

    def test_tracks_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.add_span("a", 0, 1, pid="p1", tid="x")
        tracer.add_span("b", 0, 1, pid="p0", tid="y")
        tracer.instant("e", 0.5, pid="p1", tid="z")
        assert tracer.tracks() == [("p1", "x"), ("p0", "y"), ("p1", "z")]


# -- scheduler instrumentation ------------------------------------------

class TestOrchestratorTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = Orchestrator(best_perf()).run(
            CONFIG, batch=4, seq_len=64, tracer=tracer, metrics=metrics)
        return tracer, metrics, result

    def test_result_bit_identical_without_tracer(self, traced):
        _tracer, _metrics, instrumented = traced
        plain = Orchestrator(best_perf()).run(CONFIG, batch=4, seq_len=64)
        assert plain == instrumented

    def test_spans_cover_every_reservation(self, traced):
        tracer, metrics, _result = traced
        reservations = metrics.counter("sched/reservations").value
        resource_spans = [
            span for span in tracer.finished_spans()
            if span.category in ("exec", "stream", "host")]
        assert len(resource_spans) == reservations > 0

    def test_task_spans_nest_inside_run_span(self, traced):
        tracer, _metrics, result = traced
        (run_span,) = tracer.spans_on(tid="schedule")
        assert run_span.end == pytest.approx(result.makespan_seconds)
        for span in tracer.finished_spans():
            assert span.start >= -1e-12
            assert span.end <= run_span.end + 1e-9

    def test_exported_trace_validates(self, traced):
        tracer, _metrics, _result = traced
        counts = validate_chrome_trace(to_chrome_trace(tracer))
        assert counts["spans"] == len(tracer.finished_spans())

    def test_task_metrics_histogram_populated(self, traced):
        _tracer, metrics, result = traced
        histogram = metrics.histogram("sched/task_seconds")
        assert histogram.count > 0
        assert metrics.gauge("sched/makespan_seconds").value == (
            pytest.approx(result.makespan_seconds))


class TestBottleneckTieBreak:
    @staticmethod
    def _result(host, arrays, links):
        return ScheduleResult(
            makespan_seconds=1.0, batch=1, seq_len=8, threads=1,
            array_utilization=arrays, channel_utilization=links,
            host_utilization=host, total_stream_bytes=0,
            total_dispatches=0, contention_seconds=0.0)

    def test_exact_tie_prefers_array_over_link_over_host(self):
        tied = {ArrayType.M: 0.5}
        result = self._result(0.5, dict(tied), dict(tied))
        assert result.bottleneck == "array:M"
        result = self._result(0.5, {ArrayType.M: 0.4}, dict(tied))
        assert result.bottleneck == "link:M"
        result = self._result(0.5, {ArrayType.M: 0.4}, {ArrayType.M: 0.4})
        assert result.bottleneck == "host"

    def test_tie_within_class_breaks_alphabetically(self):
        arrays = {ArrayType.M: 0.7, ArrayType.G: 0.7, ArrayType.E: 0.7}
        result = self._result(0.1, arrays, {ArrayType.M: 0.1})
        assert result.bottleneck == "array:E"

    def test_higher_utilization_always_wins(self):
        result = self._result(
            0.9, {ArrayType.M: 0.2}, {ArrayType.G: 0.3})
        assert result.bottleneck == "host"


# -- system / serving / functional bit-identity -------------------------

class TestSystemTracing:
    def test_simulate_bit_identical_with_tracer(self):
        system = ProSESystem(best_perf(), instances=2)
        plain = system.simulate(CONFIG, batch=4, seq_len=64)
        tracer = Tracer()
        traced = system.simulate(CONFIG, batch=4, seq_len=64,
                                 tracer=tracer, metrics=MetricsRegistry())
        assert plain == traced
        assert tracer.spans_on(category="shard")
        validate_chrome_trace(to_chrome_trace(tracer))

    def test_faulty_simulate_bit_identical_with_tracer(self):
        system = ProSESystem(best_perf(), instances=2)
        rates = FaultRates(instance_failure=0.9, link_transient=0.05)
        plain = system.simulate_with_faults(
            CONFIG, batch=4, seq_len=64,
            fault_model=FaultModel(rates, seed=7))
        tracer = Tracer()
        traced = system.simulate_with_faults(
            CONFIG, batch=4, seq_len=64,
            fault_model=FaultModel(rates, seed=7),
            tracer=tracer, metrics=MetricsRegistry())
        assert plain.makespan_seconds == traced.makespan_seconds
        assert plain.reliability == traced.reliability
        validate_chrome_trace(to_chrome_trace(tracer))


class TestServingTracing:
    def test_campaign_bit_identical_with_tracer(self):
        workload = uniprot_like_workload(count=16, seed=5,
                                         max_length=200)
        plain = CampaignSimulator(CONFIG).run_on_prose(workload)
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced = CampaignSimulator(CONFIG).run_on_prose(
            workload, tracer=tracer, metrics=metrics)
        assert plain == traced
        assert metrics.counter("serving/sequences").value == 16
        assert metrics.histogram(
            "serving/batch_latency_seconds").count == len(
                tracer.spans_on(category="batch"))
        validate_chrome_trace(to_chrome_trace(tracer))

    def test_faulty_campaign_traces_retries(self):
        workload = uniprot_like_workload(count=16, seed=5,
                                         max_length=200)
        faults = FaultModel(FaultRates(batch_failure=0.5), seed=11)
        tracer = Tracer()
        traced = CampaignSimulator(
            CONFIG, fault_model=faults,
            retry_policy=RetryPolicy(backoff_base_seconds=0.0001,
                                     backoff_cap_seconds=0.001),
        ).run_on_prose(workload, tracer=tracer)
        assert traced.reliability is not None
        if traced.reliability.retries:
            assert any(event.name == "retry" for event in tracer.instants)
        validate_chrome_trace(to_chrome_trace(tracer))


class TestFunctionalTracing:
    def test_forward_bit_identical_and_instrumented(self):
        import numpy as np
        tokens = np.arange(12, dtype=np.int64).reshape(2, 6) % 20
        plain_model = ProteinBert(CONFIG, seed=3)
        plain = AcceleratedProteinBert(plain_model, array_size=8).forward(
            tokens)
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced_model = ProteinBert(CONFIG, seed=3)
        traced = AcceleratedProteinBert(
            traced_model, array_size=8, tracer=tracer,
            metrics=metrics).forward(tokens)
        assert np.array_equal(plain, traced)
        names = [span.name for span in tracer.finished_spans()]
        assert "embed" in names and "forward" in names
        assert "encoder_layer[0]" in names
        assert metrics.counter("functional/forward_passes").value == 1
        assert metrics.counter("functional/tiles").value > 0
        validate_chrome_trace(to_chrome_trace(tracer))


# -- histogram percentile math ------------------------------------------

class TestHistogram:
    def test_edge_value_lands_in_edge_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)  # exactly on an edge
        assert histogram.counts == [0, 1, 0, 0]

    def test_percentiles_at_bucket_edges(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 2.0, 4.0):
            histogram.observe(value)
        # counts per bucket: (<=1): 1, (1, 2]: 2, (2, 4]: 1
        assert histogram.percentile(0) == pytest.approx(1.0)
        assert histogram.percentile(100) == pytest.approx(4.0)
        # rank 3 exhausts the (1, 2] bucket exactly -> its upper edge
        assert histogram.percentile(75) == pytest.approx(2.0)
        # rank 2 is halfway through (1, 2] -> linear interpolation
        assert histogram.percentile(50) == pytest.approx(1.5)

    def test_percentile_clamped_to_min_max(self):
        histogram = Histogram("h", bounds=(10.0,))
        histogram.observe(3.0)
        histogram.observe(5.0)
        for q in (1, 50, 99):
            assert 3.0 <= histogram.percentile(q) <= 5.0

    def test_overflow_bucket_uses_observed_max(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(100.0)
        assert histogram.percentile(99) == pytest.approx(100.0)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0,)).percentile(50)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_merge_requires_identical_bounds(self):
        left = Histogram("h", bounds=(1.0, 2.0))
        right = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_accumulates(self):
        left = Histogram("h", bounds=(1.0, 2.0))
        right = Histogram("h", bounds=(1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        left.merge(right)
        assert left.count == 2
        assert left.min == 0.5 and left.max == 1.5

    # Persisted BENCH records quote these percentiles verbatim, so the
    # extreme-q and post-merge paths must be exact, not just plausible.

    def test_q0_is_exactly_the_minimum(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.7, 2.3, 3.9):
            histogram.observe(value)
        assert histogram.percentile(0) == 1.7

    def test_q100_is_exactly_the_maximum(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.2, 1.1, 3.3):
            histogram.observe(value)
        assert histogram.percentile(100) == 3.3

    def test_q1_stays_inside_the_first_populated_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.5, 1.6, 3.0, 3.5):
            histogram.observe(value)
        estimate = histogram.percentile(1)
        assert 1.5 <= estimate <= 2.0

    def test_single_observation_answers_every_q_exactly(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.5)
        for q in (0, 1, 50, 99, 100):
            assert histogram.percentile(q) == 2.5

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(0.5)
        for q in (-0.1, 100.1):
            with pytest.raises(ValueError):
                histogram.percentile(q)

    def test_post_merge_percentiles_interpolate_over_joint_counts(self):
        left = Histogram("h", bounds=(1.0, 2.0, 4.0))
        right = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5):
            left.observe(value)
        for value in (1.5, 3.0):
            right.observe(value)
        left.merge(right)
        # joint counts: [1, 2, 1, 0]; min 0.5, max 3.0
        assert left.percentile(0) == 0.5
        assert left.percentile(100) == 3.0
        # rank 2 = (0.5, 1] bucket exhausted + half of (1, 2]
        assert left.percentile(50) == pytest.approx(1.5)
        # rank 3 exhausts (1, 2] -> its upper edge exactly
        assert left.percentile(75) == pytest.approx(2.0)
        # estimates stay monotone in q after the merge
        estimates = [left.percentile(q) for q in range(0, 101, 5)]
        assert estimates == sorted(estimates)

    def test_merge_into_empty_adopts_min_max(self):
        empty = Histogram("h", bounds=(1.0, 2.0))
        full = Histogram("h", bounds=(1.0, 2.0))
        full.observe(1.5)
        empty.merge(full)
        assert empty.min == 1.5 and empty.max == 1.5
        assert empty.percentile(50) == 1.5


class TestMetricsRegistry:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(TypeError):
            registry.gauge("metric")

    def test_merge_prefixed_and_aggregated(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.counter("requests").inc(3)
        child.gauge("depth").set(7)
        parent.merge(child, prefix="instance0")
        parent.merge(child)
        parent.merge(child)
        assert parent.counter("instance0/requests").value == 3
        assert parent.counter("requests").value == 6
        assert parent.gauge("depth").value == 7

    def test_rows_include_percentile_columns(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.5)
        (row,) = registry.rows()
        assert row["type"] == "histogram"
        assert set(("p50", "p95", "p99")) <= set(row)

    # BENCH records snapshot merged registries; a prefixed merge that
    # lands on an existing name must aggregate (same type) or fail
    # loudly (type clash) — never silently overwrite.

    def test_prefixed_merge_onto_same_type_aggregates(self):
        parent = MetricsRegistry()
        parent.counter("instance0/requests").inc(2)
        child = MetricsRegistry()
        child.counter("requests").inc(3)
        parent.merge(child, prefix="instance0")
        assert parent.counter("instance0/requests").value == 5

    def test_prefixed_merge_type_clash_raises(self):
        parent = MetricsRegistry()
        parent.gauge("instance0/requests").set(1)
        child = MetricsRegistry()
        child.counter("requests").inc(3)
        with pytest.raises(TypeError, match="instance0/requests"):
            parent.merge(child, prefix="instance0")

    def test_prefixed_merge_histogram_bounds_clash_raises(self):
        parent = MetricsRegistry()
        parent.histogram("instance0/lat", bounds=(1.0, 2.0)).observe(0.5)
        child = MetricsRegistry()
        child.histogram("lat", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            parent.merge(child, prefix="instance0")

    def test_child_name_already_containing_prefix_separator(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.counter("sched/dispatches").inc(4)
        parent.merge(child, prefix="instance1")
        assert parent.counter("instance1/sched/dispatches").value == 4


# -- export and rendering ------------------------------------------------

class TestExport:
    def _sample_tracer(self):
        tracer = Tracer()
        parent = tracer.add_span("outer", 0.0, 2.0, pid="p", tid="t")
        tracer.add_span("inner", 0.5, 1.5, pid="p", tid="t",
                        parent=parent)
        tracer.instant("tick", 1.0, pid="p", tid="t")
        return tracer

    def test_round_trip_through_json_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._sample_tracer(), str(path),
                           metadata={"run": "test"})
        data = json.loads(path.read_text())
        counts = validate_chrome_trace(data)
        assert counts == {"spans": 2, "instants": 1, "counters": 0,
                          "processes": 1, "tracks": 1}
        assert data["otherData"] == {"run": "test"}

    def test_timestamps_exported_in_microseconds(self):
        data = to_chrome_trace(self._sample_tracer())
        inner = next(event for event in data["traceEvents"]
                     if event.get("name") == "inner")
        assert inner["ts"] == pytest.approx(0.5e6)
        assert inner["dur"] == pytest.approx(1.0e6)

    def test_validator_rejects_partial_overlap(self):
        tracer = Tracer()
        tracer.add_span("a", 0.0, 2.0, pid="p", tid="t")
        tracer.add_span("b", 1.0, 3.0, pid="p", tid="t")
        with pytest.raises(ValueError, match="partially overlaps"):
            validate_chrome_trace(to_chrome_trace(tracer))

    def test_non_primitive_args_coerced(self):
        tracer = Tracer()
        tracer.add_span("s", 0.0, 1.0, payload=object())
        json.dumps(to_chrome_trace(tracer))  # must not raise

    def test_counter_and_profile_tracks_validate_together(self):
        # A full-featured export: spans + a profile track + metric and
        # monitor counter ("C") tracks, all in one document.
        from repro.telemetry import TimeSeriesStore, profile

        tracer = self._sample_tracer()
        with profile(tracer, label="hot") as report:
            sum(range(2000))
        registry = MetricsRegistry()
        registry.counter("sched/dispatches").inc(3)
        registry.gauge("fleet/capacity").set(0.75)
        store = TimeSeriesStore()
        for t, value in ((0.0, 1.0), (0.5, 3.0), (1.0, 2.0)):
            store.record("queue_depth", t, value)
        data = to_chrome_trace(tracer, profiles=[report],
                               metrics=registry, series=store)
        counts = validate_chrome_trace(data)
        assert counts["counters"] == 2 + 3  # 2 metrics + 3 samples
        assert counts["spans"] > 2  # sample spans + hotspot lanes
        assert counts["processes"] >= 3  # p, profile, metrics, monitor
        phases = {event["ph"] for event in data["traceEvents"]}
        assert {"X", "i", "M", "C"} <= phases

    def test_validator_rejects_non_numeric_counter_values(self):
        data = {"traceEvents": [
            {"ph": "C", "name": "bad", "pid": 1, "tid": 0, "ts": 0.0,
             "args": {"value": "high"}}]}
        with pytest.raises(ValueError, match="must be numeric"):
            validate_chrome_trace(data)
        data["traceEvents"][0]["args"] = {}
        with pytest.raises(ValueError, match="non-empty args"):
            validate_chrome_trace(data)

    def test_metrics_dumps(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.histogram("lat").observe(0.01)
        csv_path = tmp_path / "metrics.csv"
        jsonl_path = tmp_path / "metrics.jsonl"
        write_metrics_csv(registry, str(csv_path))
        write_metrics_jsonl(registry, str(jsonl_path))
        assert "n,counter,2" in csv_path.read_text().replace(".0", "")
        lines = jsonl_path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["type"] == "histogram"


class TestRenderTracks:
    def test_axis_and_glyphs(self):
        chart = render_tracks({"array": [(0.0, 0.5, "m")],
                               "link": [(0.5, 1.0, "s")]},
                              makespan=1.0, width=20)
        lines = chart.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("array |m")
        assert lines[1].rstrip().endswith("s|")
        assert "ms" in lines[2]

    def test_zero_makespan_renders_idle(self):
        chart = render_tracks({"t": [(0.0, 0.0, "x")]}, makespan=0.0,
                              width=10)
        assert "|.........." in chart.splitlines()[0] or (
            "|" in chart.splitlines()[0])
