"""Tests for bfloat16 emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    all_bf16_values,
    bf16_compose,
    bf16_decompose,
    bf16_unbiased_exponent,
    is_bfloat16,
    quantization_error,
    to_bfloat16,
)

finite_floats = st.floats(min_value=-1e30, max_value=1e30,
                          allow_nan=False, allow_infinity=False)


class TestToBfloat16:
    def test_exact_values_unchanged(self):
        for value in (0.0, 1.0, -2.0, 0.5, 1.5, 256.0):
            assert to_bfloat16(np.float32(value)) == value

    def test_low_bits_cleared(self):
        result = to_bfloat16(np.array([1.000001], dtype=np.float32))
        bits = result.view(np.uint32)[0]
        assert bits & 0xFFFF == 0

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly between bf16 neighbours 1.0 and 1 + 2^-7;
        # round-to-even picks 1.0 (even mantissa).
        value = np.float32(1.0 + 2.0 ** -8)
        assert to_bfloat16(value) == 1.0
        # 1 + 3*2^-8 ties between 1+2^-7 and 1+2^-6; even is 1+2^-6.
        value = np.float32(1.0 + 3.0 * 2.0 ** -8)
        assert to_bfloat16(value) == 1.0 + 2.0 ** -6

    def test_nan_preserved(self):
        result = to_bfloat16(np.array([np.nan], dtype=np.float32))
        assert np.isnan(result[0])

    def test_shape_preserved(self):
        array = np.zeros((3, 4, 5), dtype=np.float32)
        assert to_bfloat16(array).shape == (3, 4, 5)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 100, size=10000).astype(np.float32)
        relative = np.abs(to_bfloat16(values) - values) / np.abs(values)
        # bf16 has 8 significand bits including the hidden one: eps 2^-8.
        assert relative.max() <= 2.0 ** -8

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, value):
        once = to_bfloat16(np.float32(value))
        assert to_bfloat16(once) == once

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_result_is_bf16(self, value):
        assert is_bfloat16(to_bfloat16(np.float32(value))).all()

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_monotone_nonexpansive(self, value):
        # Rounding never moves a normal value past its bf16 neighbour
        # (subnormals may flush to zero with full relative error).
        rounded = float(to_bfloat16(np.float32(value)))
        if abs(value) > 1e-35:
            assert abs(rounded - float(np.float32(value))) \
                <= abs(float(np.float32(value))) * 2.0 ** -8


class TestDecomposeCompose:
    def test_roundtrip(self):
        for value in (1.0, -1.0, 0.5, 3.25, -100.0):
            sign, exponent, mantissa = bf16_decompose(value)
            assert bf16_compose(sign, exponent, mantissa) == value

    def test_known_fields(self):
        sign, exponent, mantissa = bf16_decompose(1.0)
        assert (sign, exponent, mantissa) == (0, 127, 0)
        sign, exponent, mantissa = bf16_decompose(-2.0)
        assert (sign, exponent, mantissa) == (1, 128, 0)

    def test_unbiased_exponent(self):
        assert bf16_unbiased_exponent(1.0) == 0
        assert bf16_unbiased_exponent(8.0) == 3
        assert bf16_unbiased_exponent(0.25) == -2

    def test_compose_validates_fields(self):
        with pytest.raises(ValueError):
            bf16_compose(2, 127, 0)
        with pytest.raises(ValueError):
            bf16_compose(0, 300, 0)
        with pytest.raises(ValueError):
            bf16_compose(0, 127, 200)


class TestAllBf16Values:
    def test_count_matches_fields(self):
        # 2 signs x 3 exponents x 128 mantissas, minus overlap at ±: all
        # values are distinct, so 768 total.
        values = all_bf16_values((-1, 1))
        assert len(values) == 2 * 3 * 128

    def test_values_within_range(self):
        values = all_bf16_values((0, 0), include_negative=False)
        assert values.min() >= 1.0
        assert values.max() < 2.0

    def test_sorted_ascending(self):
        values = all_bf16_values((-2, 2))
        assert (np.diff(values) > 0).all()


class TestQuantizationError:
    def test_zero_for_representable(self):
        assert quantization_error(np.array([1.0, 0.5, -4.0])).max() == 0.0

    def test_positive_for_unrepresentable(self):
        assert quantization_error(np.array([1.0 + 2 ** -10])).max() > 0.0
