"""Tests for sim-time time series: windows, deltas, the store."""

import pytest

from repro.telemetry import TimeSeries, TimeSeriesStore


class TestAppend:
    def test_samples_in_order(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert list(series.samples()) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(series) == 2
        assert series.last == 2.0
        assert series.last_time == 1.0

    def test_equal_times_allowed(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_time_regression_raises(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        with pytest.raises(ValueError, match="earlier"):
            series.append(0.5, 2.0)

    def test_capacity_evicts_oldest_and_counts_drops(self):
        series = TimeSeries("s", capacity=3)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert len(series) == 3
        assert series.dropped == 2
        assert list(series.samples()) == [(2.0, 20.0), (3.0, 30.0),
                                          (4.0, 40.0)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries("s", capacity=0)


class TestPointQueries:
    def test_value_at_is_a_step_function(self):
        series = TimeSeries("s")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.value_at(0.5) == 0.0      # before first: default
        assert series.value_at(0.5, default=-1.0) == -1.0
        assert series.value_at(1.0) == 10.0     # exactly on a sample
        assert series.value_at(1.5) == 10.0     # holds until the next
        assert series.value_at(2.0) == 20.0
        assert series.value_at(99.0) == 20.0    # holds past the last

    def test_empty_series(self):
        series = TimeSeries("s")
        assert series.last is None
        assert series.last_time is None
        assert series.value_at(1.0) == 0.0


class TestWindows:
    def _series(self):
        series = TimeSeries("s")
        for t, v in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]:
            series.append(t, v)
        return series

    def test_half_open_boundaries(self):
        series = self._series()
        # (start, end]: the sample on end belongs, the one on start
        # does not — adjacent windows partition the timeline.
        assert series.window(1.0, 2.0) == [(2.0, 20.0)]
        assert series.window(0.0, 1.0) == [(1.0, 10.0)]
        first = series.window(0.0, 1.5)
        second = series.window(1.5, 3.0)
        assert first + second == list(series.samples())

    def test_window_end_before_start_raises(self):
        with pytest.raises(ValueError):
            self._series().window(2.0, 1.0)

    def test_empty_window_stats_are_none_not_zero(self):
        stats = self._series().window_stats(1.1, 1.9)
        assert stats.count == 0
        assert stats.total == 0.0
        assert stats.mean is None
        assert stats.minimum is None
        assert stats.maximum is None
        assert stats.p50 is None

    def test_single_sample_window_returns_that_sample(self):
        stats = self._series().window_stats(1.5, 2.5)
        assert stats.count == 1
        assert stats.mean == 20.0
        assert stats.minimum == 20.0
        assert stats.maximum == 20.0
        assert stats.p50 == pytest.approx(20.0)
        assert stats.p99 == pytest.approx(20.0)

    def test_window_longer_than_run(self):
        series = self._series()
        stats = series.window_stats(-100.0, 100.0)
        assert stats.count == 3
        assert stats.mean == pytest.approx(20.0)
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0

    def test_zero_width_window_is_empty(self):
        stats = self._series().window_stats(2.0, 2.0)
        assert stats.count == 0


class TestCumulative:
    def _counter(self):
        series = TimeSeries("c")
        for t, v in [(1.0, 5.0), (2.0, 8.0), (3.0, 8.0), (4.0, 12.0)]:
            series.append(t, v)
        return series

    def test_delta_reads_step_edges(self):
        series = self._counter()
        assert series.delta(1.0, 3.0) == pytest.approx(3.0)
        assert series.delta(2.5, 3.5) == pytest.approx(0.0)

    def test_delta_window_longer_than_run_measures_from_zero(self):
        series = self._counter()
        assert series.delta(-10.0, 10.0) == pytest.approx(12.0)

    def test_rate(self):
        series = self._counter()
        assert series.rate(1.0, 3.0) == pytest.approx(1.5)
        assert series.rate(3.0, 3.0) == 0.0
        assert series.rate(3.0, 1.0) == 0.0

    def test_delta_end_before_start_raises(self):
        with pytest.raises(ValueError):
            self._counter().delta(3.0, 1.0)


class TestStore:
    def test_get_or_create_and_order(self):
        store = TimeSeriesStore("test")
        store.record("b", 0.0, 1.0)
        store.record("a", 1.0, 2.0)
        store.record("b", 2.0, 3.0)
        assert store.names() == ["b", "a"]  # first-appearance order
        assert len(store) == 2
        assert "a" in store and "missing" not in store
        assert store.get("missing") is None
        assert store.get("b").last == 3.0
        assert [series.name for series in store] == ["b", "a"]

    def test_store_capacity_flows_to_series(self):
        store = TimeSeriesStore("test", capacity=2)
        for i in range(4):
            store.record("s", float(i), float(i))
        assert len(store.get("s")) == 2
        assert store.get("s").dropped == 2
