"""Tests for the analytic per-dataflow timing model."""

import dataclasses

import pytest

from repro.arch import (
    best_perf,
    gemm_cycles,
    gemm_stream_bytes,
    gemm_tiles,
    simd_cycles_for,
    simd_stream_bytes,
    time_dataflow,
)
from repro.dataflow import DataflowKind, build_graph_for
from repro.model import protein_bert_base
from repro.trace import OpKind, bmm_op, elementwise_op, matmul_op


@pytest.fixture(scope="module")
def config():
    return best_perf()


@pytest.fixture(scope="module")
def graph():
    return build_graph_for(protein_bert_base(), batch=4, seq_len=512)


def dataflow_of(graph, kind):
    return next(df for _, df in graph.dataflows if df.kind is kind)


class TestGemmTiming:
    def test_tiles_exact_fit(self):
        op = matmul_op(128, 768, 64)
        assert gemm_tiles(op, 64) == (2, 1, 1)

    def test_tiles_ceil(self):
        op = matmul_op(100, 768, 70)
        assert gemm_tiles(op, 64) == (2, 2, 1)

    def test_bmm_batch_multiplier(self):
        op = bmm_op(12, 64, 64, 64)
        rows, cols, batch = gemm_tiles(op, 64)
        assert batch == 12

    def test_cycles_formula(self):
        op = matmul_op(128, 768, 128, name="t")
        # 2x2 tiles, each k + 2n = 768 + 128 cycles.
        assert gemm_cycles(op, 64) == 4 * (768 + 128)

    def test_small_k_overhead_on_big_array(self):
        # k = 64 on a 64x64 array: 3x fill/drain overhead -- the paper's
        # argument for small E-Type arrays.
        small_k = bmm_op(1, 64, 64, 64)
        assert gemm_cycles(small_k, 64) / 64 == pytest.approx(3.0)
        assert gemm_cycles(small_k, 16) / (16 * 64) \
            == pytest.approx((64 + 32) / 64)

    def test_non_gemm_rejected(self):
        with pytest.raises(ValueError):
            gemm_tiles(elementwise_op(OpKind.ADD, (4,)), 16)


class TestStreamBytes:
    def test_with_buffer_is_algorithmic_minimum(self):
        op = matmul_op(128, 768, 128)
        bytes_in = gemm_stream_bytes(op, 64, use_input_buffer=True)
        assert bytes_in == 2 * (128 * 768 + 768 * 128)

    def test_without_buffer_restreams_per_tile(self):
        op = matmul_op(128, 768, 128)
        with_buffer = gemm_stream_bytes(op, 64, use_input_buffer=True)
        without = gemm_stream_bytes(op, 64, use_input_buffer=False)
        assert without > with_buffer
        # 2x2 tiles, each streaming a 64-wide strip of both operands.
        assert without == 2 * (4 * 64 * 768 * 2)

    def test_simd_matrix_operand_streams_fully(self):
        op = elementwise_op(OpKind.ADD, (64, 64))
        assert simd_stream_bytes(op) == 2 * 64 * 64

    def test_simd_bias_vector_streams_once(self):
        op = elementwise_op(OpKind.ADD, (64, 64),
                            metadata={"vector_operand": 1.0})
        assert simd_stream_bytes(op) == 2 * 64

    def test_lut_functions_stream_nothing(self):
        assert simd_stream_bytes(elementwise_op(OpKind.EXP, (64, 64))) == 0
        assert simd_stream_bytes(elementwise_op(OpKind.GELU, (64, 64))) == 0

    def test_simd_cycles_one_column_per_cycle(self):
        assert simd_cycles_for(1024, 16) == 64


class TestTimeDataflow:
    def test_dataflow1_single_accel_segment(self, graph, config):
        df1 = dataflow_of(graph, DataflowKind.DATAFLOW_1)
        timing = time_dataflow(df1, 64, config)
        assert [s.resource for s in timing.segments] == ["accel"]

    def test_dataflow3_accel_host_accel(self, graph, config):
        df3 = dataflow_of(graph, DataflowKind.DATAFLOW_3)
        timing = time_dataflow(df3, 16, config)
        assert [s.resource for s in timing.segments] \
            == ["accel", "host", "accel"]

    def test_dataflow3_host_segment_has_flops(self, graph, config):
        df3 = dataflow_of(graph, DataflowKind.DATAFLOW_3)
        timing = time_dataflow(df3, 16, config)
        host = timing.segments[1]
        assert host.host_flops > 0
        assert host.compute_seconds > 0

    def test_matmul_cycles_at_matmul_clock(self, graph, config):
        df1 = dataflow_of(graph, DataflowKind.DATAFLOW_1)
        timing = time_dataflow(df1, 64, config)
        expected = (timing.matmul_cycles / config.matmul_frequency
                    + timing.simd_cycles / config.simd_frequency)
        assert timing.accel_compute_seconds == pytest.approx(expected)

    def test_smaller_array_more_cycles(self, graph, config):
        df2 = dataflow_of(graph, DataflowKind.DATAFLOW_2)
        small = time_dataflow(df2, 16, config)
        large = time_dataflow(df2, 64, config)
        assert small.matmul_cycles > large.matmul_cycles

    def test_unchained_simd_costs_triple(self, graph):
        chained_config = best_perf()
        unchained_config = dataclasses.replace(chained_config,
                                               chained=False)
        df2 = dataflow_of(graph, DataflowKind.DATAFLOW_2)
        chained = time_dataflow(df2, 64, chained_config)
        unchained = time_dataflow(df2, 64, unchained_config)
        assert unchained.simd_cycles == 3 * chained.simd_cycles
        assert unchained.total_stream_bytes > chained.total_stream_bytes

    def test_no_buffer_increases_traffic(self, graph):
        with_buffer = best_perf()
        without = dataclasses.replace(with_buffer, use_input_buffer=False)
        df1 = dataflow_of(graph, DataflowKind.DATAFLOW_1)
        assert (time_dataflow(df1, 64, without).total_stream_bytes
                > time_dataflow(df1, 64, with_buffer).total_stream_bytes)

    def test_bound_total_seconds_uses_max(self, graph, config):
        df1 = dataflow_of(graph, DataflowKind.DATAFLOW_1)
        timing = time_dataflow(df1, 64, config)
        tight = timing.bound_total_seconds(type_bandwidth=1e30)
        assert tight == pytest.approx(timing.accel_compute_seconds
                                      + timing.host_compute_seconds)
        loose = timing.bound_total_seconds(type_bandwidth=1e9)
        assert loose > tight
