"""Tests for the character-level protein tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proteins import DEFAULT_VOCABULARY, ProteinTokenizer, STANDARD_AMINO_ACIDS

protein_strings = st.text(
    alphabet=st.sampled_from(STANDARD_AMINO_ACIDS), min_size=1, max_size=64)


@pytest.fixture
def tokenizer():
    return ProteinTokenizer()


class TestEncode:
    def test_special_token_framing(self, tokenizer):
        encoding = tokenizer.encode("MEYQ")
        vocab = DEFAULT_VOCABULARY
        assert encoding.ids[0] == vocab.cls_id
        assert encoding.ids[-1] == vocab.sep_id
        assert encoding.length == 6

    def test_each_residue_is_one_token(self, tokenizer):
        encoding = tokenizer.encode("ACDEFGHIKLMNPQRSTVWY")
        assert encoding.length == 22

    def test_lowercase_input_normalized(self, tokenizer):
        upper = tokenizer.encode("MEYQ")
        lower = tokenizer.encode("meyq")
        assert np.array_equal(upper.ids, lower.ids)

    def test_truncation_respects_max_length(self, tokenizer):
        encoding = tokenizer.encode("A" * 100, max_length=10)
        assert encoding.length == 10
        assert encoding.ids[-1] == DEFAULT_VOCABULARY.sep_id

    def test_padding_to_max_length(self, tokenizer):
        encoding = tokenizer.encode("MEYQ", max_length=12,
                                    pad_to_max_length=True)
        assert encoding.length == 12
        assert encoding.num_real_tokens == 6
        assert (encoding.ids[6:] == DEFAULT_VOCABULARY.pad_id).all()
        assert (encoding.attention_mask[6:] == 0).all()

    def test_padding_without_max_length_raises(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.encode("MEYQ", pad_to_max_length=True)

    def test_no_special_tokens_mode(self):
        tokenizer = ProteinTokenizer(add_special_tokens=False)
        encoding = tokenizer.encode("MEYQ")
        assert encoding.length == 4
        assert encoding.ids[0] == DEFAULT_VOCABULARY.index("M")

    def test_unknown_character_becomes_unk(self, tokenizer):
        encoding = tokenizer.encode("M*Q")
        assert DEFAULT_VOCABULARY.unk_id in encoding.ids

    @given(protein_strings)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_via_decode(self, sequence):
        tokenizer = ProteinTokenizer()
        encoding = tokenizer.encode(sequence)
        assert tokenizer.decode(encoding.ids) == sequence

    @given(protein_strings)
    @settings(max_examples=50, deadline=None)
    def test_mask_counts_match_ids(self, sequence):
        tokenizer = ProteinTokenizer()
        encoding = tokenizer.encode(sequence, max_length=80,
                                    pad_to_max_length=True)
        assert encoding.num_real_tokens == min(len(sequence) + 2, 80)


class TestEncodeBatch:
    def test_common_length_is_longest_plus_specials(self, tokenizer):
        batch = tokenizer.encode_batch(["MEYQ", "ME"])
        assert batch.ids.shape == (2, 6)
        assert batch.attention_mask.sum() == 6 + 4

    def test_explicit_max_length(self, tokenizer):
        batch = tokenizer.encode_batch(["MEYQ", "ME"], max_length=16)
        assert batch.ids.shape == (2, 16)

    def test_empty_batch_raises(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.encode_batch([])

    def test_batch_rows_match_single_encodes(self, tokenizer):
        sequences = ["MEYQ", "ACDE", "WW"]
        batch = tokenizer.encode_batch(sequences, max_length=10)
        for row, sequence in zip(batch.ids, sequences):
            single = tokenizer.encode(sequence, max_length=10,
                                      pad_to_max_length=True)
            assert np.array_equal(row, single.ids)


class TestDecode:
    def test_skips_special_tokens_by_default(self, tokenizer):
        encoding = tokenizer.encode("MEYQ", max_length=10,
                                    pad_to_max_length=True)
        assert tokenizer.decode(encoding.ids) == "MEYQ"

    def test_keep_special_tokens(self, tokenizer):
        encoding = tokenizer.encode("ME")
        decoded = tokenizer.decode(encoding.ids, skip_special_tokens=False)
        assert decoded.startswith("<cls>")
        assert decoded.endswith("<sep>")
