"""Tests for the op taxonomy, recorder, and symbolic tracer."""

import numpy as np
import pytest

from repro.model import ProteinBert, protein_bert_base, protein_bert_tiny
from repro.trace import (
    Op,
    OpKind,
    TraceRecorder,
    TraceSpec,
    bmm_op,
    count_by_kind,
    elementwise_op,
    flops_by_category,
    matmul_op,
    matmul_shapes,
    trace_layer,
    trace_model,
)


class TestOp:
    def test_matmul_flops(self):
        op = matmul_op(4, 5, 6)
        assert op.flops == 2 * 4 * 5 * 6
        assert op.elements == 24

    def test_bmm_flops(self):
        op = bmm_op(3, 4, 5, 6)
        assert op.flops == 3 * 2 * 4 * 5 * 6
        assert op.elements == 3 * 24

    def test_matmul_shape_validated(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.MATMUL, shape=(4, 5))

    def test_bmm_shape_validated(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.BMM, shape=(4, 5, 6))

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            matmul_op(0, 5, 6)

    def test_sum_reduces_last_axis(self):
        op = elementwise_op(OpKind.SUM, (2, 3, 4))
        assert op.elements == 6

    def test_elementwise_flops_linear(self):
        op = elementwise_op(OpKind.ADD, (10, 10))
        assert op.flops == 100

    def test_bytes_moved_matmul(self):
        op = matmul_op(4, 5, 6)
        assert op.bytes_moved(2) == 2 * (20 + 30 + 24)

    def test_bytes_moved_binary_elementwise(self):
        op = elementwise_op(OpKind.ADD, (10,))
        assert op.bytes_moved(2) == 2 * 30

    def test_figure3_categories(self):
        assert matmul_op(1, 1, 1).figure3_category == "Matrix Multiply"
        assert bmm_op(1, 1, 1, 1).figure3_category == "Batched Mat Mul"
        assert elementwise_op(OpKind.SOFTMAX, (2,)).figure3_category \
            == "Softmax"
        assert elementwise_op(OpKind.LAYERNORM, (2,)).figure3_category \
            == "Other"

    def test_scaled_preserves_identity(self):
        op = matmul_op(4, 5, 6, name="x", layer=3)
        scaled = op.scaled(16)
        assert scaled.batch == 16
        assert scaled.shape == op.shape and scaled.name == op.name


class TestRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        ops = [matmul_op(1, 1, 1, name=f"op{i}") for i in range(3)]
        for op in ops:
            recorder.record(op)
        assert [o.name for o in recorder] == ["op0", "op1", "op2"]

    def test_disabled_recorder_ignores(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(matmul_op(1, 1, 1))
        assert len(recorder) == 0

    def test_by_kind_grouping(self):
        recorder = TraceRecorder()
        recorder.record(matmul_op(1, 1, 1))
        recorder.record(elementwise_op(OpKind.ADD, (2,)))
        recorder.record(matmul_op(2, 2, 2))
        grouped = recorder.by_kind()
        assert len(grouped[OpKind.MATMUL]) == 2
        assert len(grouped[OpKind.ADD]) == 1

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(matmul_op(1, 1, 1))
        recorder.clear()
        assert len(recorder) == 0


class TestTraceSpec:
    def test_rejects_overlong_sequence(self):
        config = protein_bert_tiny(max_position=64)
        with pytest.raises(ValueError):
            TraceSpec(config=config, seq_len=100)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            TraceSpec(config=protein_bert_tiny(), batch=0)


class TestSymbolicTrace:
    def test_matches_executed_trace_without_mask(self):
        config = protein_bert_tiny()
        model = ProteinBert(config, seed=1)
        recorder = TraceRecorder()
        ids = np.random.default_rng(0).integers(
            0, config.vocab_size, size=(2, 16))
        model.forward(ids, recorder=recorder)
        symbolic = trace_model(TraceSpec(config, batch=2, seq_len=16))
        assert recorder.kind_signature() == tuple(
            (op.kind, op.shape) for op in symbolic)

    def test_matches_executed_trace_with_mask(self):
        config = protein_bert_tiny()
        model = ProteinBert(config, seed=1)
        recorder = TraceRecorder()
        ids = np.random.default_rng(0).integers(
            0, config.vocab_size, size=(3, 12))
        mask = np.ones((3, 12), dtype=np.int64)
        model.forward(ids, mask, recorder=recorder)
        symbolic = trace_model(
            TraceSpec(config, batch=3, seq_len=12, with_mask=True))
        assert recorder.kind_signature() == tuple(
            (op.kind, op.shape) for op in symbolic)

    def test_per_layer_op_counts(self):
        config = protein_bert_base()
        layer_ops = trace_layer(TraceSpec(config, batch=1, seq_len=32), 0)
        counts = count_by_kind(layer_ops)
        assert counts[OpKind.MATMUL] == 6        # q,k,v,attn-out,ffn x2
        assert counts[OpKind.BMM] == 2           # scores + context
        assert counts[OpKind.SOFTMAX] == 1
        assert counts[OpKind.GELU] == 1
        assert counts[OpKind.LAYERNORM] == 2

    def test_paper_matmul_shapes_at_batch_128(self):
        # Section 3.1: attention/output sublayers use m = 65536 (batch 128
        # x seq 512), k = 768/3072, n = 768.
        config = protein_bert_base()
        ops = trace_layer(TraceSpec(config, batch=128, seq_len=512), 0)
        shapes = {op.shape for op in ops if op.kind is OpKind.MATMUL}
        assert (65536, 768, 768) in shapes
        assert (65536, 3072, 768) in shapes
        assert (65536, 768, 3072) in shapes

    def test_paper_bmm_shapes(self):
        # Attention dot products: k = 64 per head.
        config = protein_bert_base()
        ops = trace_layer(TraceSpec(config, batch=2, seq_len=512), 0)
        bmms = [op.shape for op in ops if op.kind is OpKind.BMM]
        assert (2 * 12, 512, 64, 512) in bmms
        assert (2 * 12, 512, 512, 64) in bmms

    def test_flops_scale_linearly_with_batch(self):
        config = protein_bert_tiny()
        one = sum(op.flops for op in trace_model(
            TraceSpec(config, batch=1, seq_len=32)))
        four = sum(op.flops for op in trace_model(
            TraceSpec(config, batch=4, seq_len=32)))
        assert four == pytest.approx(4 * one, rel=1e-9)

    def test_attention_flops_scale_quadratically_with_length(self):
        config = protein_bert_tiny(max_position=512)
        def bmm_flops(seq):
            ops = trace_model(TraceSpec(config, batch=1, seq_len=seq))
            return sum(op.flops for op in ops if op.kind is OpKind.BMM)
        assert bmm_flops(128) == pytest.approx(4 * bmm_flops(64), rel=1e-9)

    def test_flops_by_category_totals(self):
        config = protein_bert_tiny()
        ops = trace_model(TraceSpec(config, batch=1, seq_len=16))
        categories = flops_by_category(ops)
        assert sum(categories.values()) == sum(op.flops for op in ops)

    def test_matmul_shapes_helper(self):
        config = protein_bert_tiny()
        ops = trace_model(TraceSpec(config, batch=1, seq_len=16))
        shapes = matmul_shapes(ops)
        assert len(shapes) == config.num_layers * 8
