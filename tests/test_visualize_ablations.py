"""Tests for the schedule visualizer and the ablation experiments."""

import pytest

from repro.arch import best_perf
from repro.experiments import ablations
from repro.model import protein_bert_tiny
from repro.sched import Orchestrator
from repro.sched.visualize import render_gantt, thread_timeline, utilization_summary

CONFIG = protein_bert_tiny(num_layers=2, hidden_size=64, num_heads=4,
                           intermediate_size=128)


@pytest.fixture(scope="module")
def schedule():
    return Orchestrator(best_perf()).run(CONFIG, batch=4, seq_len=32,
                                         record_tasks=True)


class TestVisualize:
    def test_gantt_contains_resources_and_legend(self, schedule):
        chart = render_gantt(schedule, width=60)
        assert "legend" in chart
        assert "64x64 M" in chart
        assert "ms" in chart

    def test_gantt_requires_task_log(self):
        bare = Orchestrator(best_perf()).run(CONFIG, batch=2, seq_len=32)
        with pytest.raises(ValueError):
            render_gantt(bare)

    def test_gantt_row_cap(self, schedule):
        chart = render_gantt(schedule, width=40, max_rows=3)
        rows = [line for line in chart.split("\n") if "|" in line]
        assert len(rows) <= 3

    def test_thread_timeline_ordered(self, schedule):
        timeline = thread_timeline(schedule, thread=0)
        assert timeline
        starts = [start for _, start, _ in timeline]
        assert starts == sorted(starts)

    def test_utilization_summary_rows(self, schedule):
        summary = utilization_summary(schedule)
        for label in ("array:M", "array:G", "array:E", "link:M", "host"):
            assert label in summary


class TestAblations:
    def test_input_buffer_always_helps(self):
        points = ablations.input_buffer_ablation(
            config=CONFIG, bandwidths_gbps=(90, 540), batch=8,
            seq_len=128)
        for point in points:
            assert point.gain > 1.0

    def test_buffer_matters_most_when_starved(self):
        points = ablations.input_buffer_ablation(
            config=CONFIG, bandwidths_gbps=(20, 5000), batch=8,
            seq_len=128)
        starved, ample = points
        assert starved.gain > ample.gain

    def test_chaining_helps_and_saves_traffic(self):
        result = ablations.chaining_ablation(config=CONFIG, batch=8,
                                             seq_len=128)
        assert result.speedup > 1.0
        assert 0.0 < result.traffic_saving < 1.0

    def test_gelu_window_knee_at_paper_choice(self):
        points = ablations.gelu_window_ablation()
        by_window = {p.window: p for p in points}
        # Error shrinks with wider windows; the paper's [-4, 3] choice is
        # the first window with error comfortably below 0.05 at 4 KB.
        assert by_window[(-2, 1)].max_error \
            > by_window[(-4, 3)].max_error
        assert by_window[(-4, 3)].max_error < 0.05
        assert by_window[(-4, 3)].table_bytes == 4096

    def test_format_result_renders(self):
        results = (ablations.input_buffer_ablation(
                       config=CONFIG, bandwidths_gbps=(90,), batch=4,
                       seq_len=64),
                   ablations.chaining_ablation(config=CONFIG, batch=4,
                                               seq_len=64),
                   ablations.gelu_window_ablation(windows=((-4, 3),)))
        text = ablations.format_result(results)
        assert "partial input buffer" in text
        assert "chaining" in text
        assert "[-4,3]" in text
