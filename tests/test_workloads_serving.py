"""Tests for workload generators, campaign serving, and numerics study."""

import numpy as np
import pytest

from repro.experiments import numerics
from repro.proteins import (
    FAB_LENGTH,
    Workload,
    WorkloadItem,
    bucket_batches,
    multi_domain_workload,
    screening_campaign,
    uniprot_like_workload,
)
from repro.model import protein_bert_tiny
from repro.system import CampaignSimulator, format_campaign

FAST_CONFIG = protein_bert_tiny(num_layers=2, hidden_size=128, num_heads=4,
                                intermediate_size=512, max_position=2048)


class TestWorkloadGenerators:
    def test_uniprot_like_lengths(self):
        workload = uniprot_like_workload(count=200, seed=0)
        assert len(workload) == 200
        # Median near 300 residues, heavy right tail.
        assert 200 < np.median(workload.lengths) < 450
        assert workload.max_length > 600

    def test_bounds_respected(self):
        workload = uniprot_like_workload(count=100, seed=1,
                                         min_length=100, max_length=500)
        assert workload.lengths.min() >= 100
        assert workload.max_length <= 500

    def test_deterministic(self):
        a = uniprot_like_workload(count=20, seed=2)
        b = uniprot_like_workload(count=20, seed=2)
        assert a.items == b.items

    def test_screening_campaign_fixed_length(self):
        campaign = screening_campaign(library_size=30)
        assert all(item.length == FAB_LENGTH for item in campaign.items)
        # All variants differ from each other (point-mutant library).
        assert len({item.sequence for item in campaign.items}) > 25

    def test_multi_domain_lengths(self):
        workload = multi_domain_workload(count=50, seed=3)
        assert workload.max_length > 1000       # several domains
        assert workload.lengths.min() >= 30

    def test_sorted_by_length(self):
        workload = uniprot_like_workload(count=30, seed=4)
        ordered = workload.sorted_by_length()
        assert list(ordered.lengths) == sorted(workload.lengths)

    def test_histogram(self):
        workload = Workload(name="t", items=(
            WorkloadItem("A" * 10, 10), WorkloadItem("A" * 100, 100)))
        histogram = workload.length_histogram([0, 50, 200])
        assert histogram == {(0, 50): 1, (50, 200): 1}

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            uniprot_like_workload(count=0)


class TestBucketBatches:
    def test_covers_workload(self):
        workload = uniprot_like_workload(count=100, seed=5)
        batches = bucket_batches(workload, (128, 256, 512, 1024, 2048),
                                 max_batch=16)
        assert sum(size for _, size in batches) == 100
        assert all(size <= 16 for _, size in batches)

    def test_padding_edge_covers_item(self):
        workload = Workload(name="t", items=(WorkloadItem("A" * 100, 100),))
        batches = bucket_batches(workload, (64, 128))
        assert batches == [(128, 1)]

    def test_uncovered_workload_rejected(self):
        workload = Workload(name="t", items=(WorkloadItem("A" * 300, 300),))
        with pytest.raises(ValueError):
            bucket_batches(workload, (64, 128))

    def test_invalid_max_batch(self):
        workload = uniprot_like_workload(count=4, seed=6)
        with pytest.raises(ValueError):
            bucket_batches(workload, (2048,), max_batch=0)


class TestCampaignSimulator:
    @pytest.fixture(scope="class")
    def simulator(self):
        return CampaignSimulator(model_config=FAST_CONFIG, max_batch=16)

    @pytest.fixture(scope="class")
    def workload(self):
        return uniprot_like_workload(count=24, seed=7, max_length=1024)

    def test_prose_report(self, simulator, workload):
        report = simulator.run_on_prose(workload)
        assert report.sequences == 24
        assert report.total_seconds > 0
        assert 0.0 <= report.padding_waste < 0.8

    def test_baseline_report(self, simulator, workload):
        report = simulator.run_on_baseline(workload)
        assert report.platform == "A100"
        assert report.total_energy_joules == pytest.approx(
            report.total_seconds * 395.0)

    def test_prose_wins_time_and_energy(self, simulator, workload):
        prose = simulator.run_on_prose(workload)
        gpu = simulator.run_on_baseline(workload)
        assert prose.total_seconds < gpu.total_seconds
        assert prose.total_energy_joules < gpu.total_energy_joules / 5

    def test_padding_identical_across_platforms(self, simulator, workload):
        prose = simulator.run_on_prose(workload)
        gpu = simulator.run_on_baseline(workload)
        assert prose.padded_tokens == gpu.padded_tokens

    def test_format_renders(self, simulator, workload):
        text = format_campaign([simulator.run_on_prose(workload)])
        assert "ProSE BestPerf" in text


class TestNumericsStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return numerics.run(num_train=20, num_test=10)

    def test_fidelity(self, result):
        assert result.output_correlation > 0.999
        assert result.output_max_error < 0.2

    def test_downstream_conclusion_preserved(self, result):
        assert abs(result.accelerated_rank_correlation
                   - result.reference_rank_correlation) < 0.15
        assert result.accuracy_preserved

    def test_format(self, result):
        text = numerics.format_result(result)
        assert "accuracy preserved" in text
